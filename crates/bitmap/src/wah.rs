//! Word-Aligned Hybrid (WAH) compressed bitvectors.
//!
//! WAH stores a bitvector as a sequence of 32-bit words, each describing a
//! multiple of 31 logical bits:
//!
//! * **Literal word** — MSB = 0; the low 31 bits are one group of the
//!   bitmap verbatim (LSB = lowest bit position of the group).
//! * **Fill word** — MSB = 1; bit 30 is the fill value; the low 30 bits
//!   count how many consecutive 31-bit groups are all that value.
//!
//! WAH is the compression FastBit uses: logical operations run directly on
//! the compressed form (word-at-a-time, hence "word-aligned"), which is
//! what makes bitmap indexes competitive for scientific range queries.

use pdc_types::{Run, Selection};
use serde::{Deserialize, Serialize};

const GROUP_BITS: u64 = 31;
const LITERAL_MASK: u32 = 0x7FFF_FFFF;
const FILL_FLAG: u32 = 0x8000_0000;
const FILL_BIT: u32 = 0x4000_0000;
const FILL_COUNT_MASK: u32 = 0x3FFF_FFFF;
const MAX_FILL_GROUPS: u64 = FILL_COUNT_MASK as u64;

/// A WAH-compressed bitvector of fixed logical length.
///
/// ```
/// use pdc_bitmap::WahBitVector;
/// use pdc_types::Selection;
/// let a = WahBitVector::from_selection(1_000_000, &Selection::from_span(100, 500));
/// let b = WahBitVector::from_selection(1_000_000, &Selection::from_span(400, 500));
/// assert_eq!(a.and(&b).count_ones(), 200);
/// assert!(a.num_words() < 10); // a few words for a million bits
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WahBitVector {
    words: Vec<u32>,
    nbits: u64,
}

/// Incremental builder; append runs of identical bits in order.
#[derive(Debug, Default)]
pub struct WahBuilder {
    words: Vec<u32>,
    nbits: u64,
    partial: u32,
    partial_len: u32,
}

impl WahBuilder {
    /// A fresh, empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn push_fill(&mut self, bit: bool, mut groups: u64) {
        while groups > 0 {
            let take = groups.min(MAX_FILL_GROUPS);
            // Coalesce with a preceding fill of the same polarity.
            if let Some(last) = self.words.last_mut() {
                if *last & FILL_FLAG != 0 && (*last & FILL_BIT != 0) == bit {
                    let have = (*last & FILL_COUNT_MASK) as u64;
                    let room = MAX_FILL_GROUPS - have;
                    let add = take.min(room);
                    *last += add as u32;
                    groups -= add;
                    if add == take {
                        continue;
                    }
                    // fell through with a full word; start a new one below
                    let rest = take - add;
                    self.words
                        .push(FILL_FLAG | if bit { FILL_BIT } else { 0 } | rest as u32);
                    groups -= rest;
                    continue;
                }
            }
            self.words.push(FILL_FLAG | if bit { FILL_BIT } else { 0 } | take as u32);
            groups -= take;
        }
    }

    fn push_group(&mut self, payload: u32) {
        debug_assert_eq!(payload & !LITERAL_MASK, 0);
        if payload == 0 {
            self.push_fill(false, 1);
        } else if payload == LITERAL_MASK {
            self.push_fill(true, 1);
        } else {
            self.words.push(payload);
        }
    }

    /// Append `n` copies of `bit`.
    pub fn append_bits(&mut self, bit: bool, mut n: u64) {
        self.nbits += n;
        // Top up the partial group first.
        if self.partial_len > 0 {
            let take = n.min(GROUP_BITS - self.partial_len as u64) as u32;
            if bit {
                self.partial |= ((1u32 << take) - 1).wrapping_shl(self.partial_len);
            }
            self.partial_len += take;
            n -= take as u64;
            if self.partial_len as u64 == GROUP_BITS {
                let p = self.partial;
                self.partial = 0;
                self.partial_len = 0;
                self.push_group(p);
            }
        }
        // Whole groups.
        let groups = n / GROUP_BITS;
        if groups > 0 {
            self.push_fill(bit, groups);
            n -= groups * GROUP_BITS;
        }
        // Remainder starts a new partial group.
        if n > 0 {
            debug_assert_eq!(self.partial_len, 0);
            if bit {
                self.partial = (1u32 << n) - 1;
            }
            self.partial_len = n as u32;
        }
    }

    /// Append a single bit.
    pub fn append_bit(&mut self, bit: bool) {
        self.append_bits(bit, 1);
    }

    /// Append the low `nbits` (≤ 64) bits of `mask` (bit `j` of `mask` is
    /// logical bit `j`), decomposed into same-value runs so fills still
    /// coalesce. This is how the scan kernels' 64-element hit masks feed
    /// index construction without a per-bool [`WahBuilder::append_bit`]
    /// round trip.
    pub fn append_mask_bits(&mut self, mask: u64, nbits: u32) {
        debug_assert!(nbits <= 64);
        let mut pos = 0u32;
        while pos < nbits {
            let rest = mask >> pos;
            let (bit, run) = if rest & 1 == 0 {
                (false, rest.trailing_zeros().min(nbits - pos))
            } else {
                (true, rest.trailing_ones().min(nbits - pos))
            };
            self.append_bits(bit, run as u64);
            pos += run;
        }
    }

    /// Finish, padding any partial group with zeros (the logical length
    /// remembers where the real data ends).
    pub fn finish(mut self) -> WahBitVector {
        if self.partial_len > 0 {
            let p = self.partial;
            self.partial = 0;
            self.partial_len = 0;
            self.push_group(p);
        }
        WahBitVector { words: self.words, nbits: self.nbits }
    }
}

/// One decoded element of a WAH stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Chunk {
    /// One group with this 31-bit payload.
    Literal(u32),
    /// `groups` consecutive groups of all-`bit`.
    Fill { bit: bool, groups: u64 },
}

/// Cursor over a WAH word stream that can consume partial fills.
struct Cursor<'a> {
    words: std::slice::Iter<'a, u32>,
    current: Option<Chunk>,
}

impl<'a> Cursor<'a> {
    fn new(v: &'a WahBitVector) -> Self {
        let mut c = Cursor { words: v.words.iter(), current: None };
        c.refill();
        c
    }

    fn refill(&mut self) {
        self.current = self.words.next().map(|&w| {
            if w & FILL_FLAG != 0 {
                Chunk::Fill { bit: w & FILL_BIT != 0, groups: (w & FILL_COUNT_MASK) as u64 }
            } else {
                Chunk::Literal(w)
            }
        });
    }

    /// The pending chunk, if any.
    fn peek(&self) -> Option<Chunk> {
        self.current
    }

    /// Consume `n` groups (must not exceed the pending chunk's length).
    fn advance(&mut self, n: u64) {
        match self.current {
            Some(Chunk::Literal(_)) => {
                debug_assert_eq!(n, 1);
                self.refill();
            }
            Some(Chunk::Fill { bit, groups }) => {
                debug_assert!(n <= groups);
                if n == groups {
                    self.refill();
                } else {
                    self.current = Some(Chunk::Fill { bit, groups: groups - n });
                }
            }
            None => debug_assert_eq!(n, 0),
        }
    }
}

impl WahBitVector {
    /// An all-zero bitvector of `nbits` logical bits.
    pub fn zeros(nbits: u64) -> Self {
        let mut b = WahBuilder::new();
        b.append_bits(false, nbits);
        b.finish()
    }

    /// An all-one bitvector of `nbits` logical bits.
    pub fn ones(nbits: u64) -> Self {
        let mut b = WahBuilder::new();
        b.append_bits(true, nbits);
        b.finish()
    }

    /// Build from a plain bool slice.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut b = WahBuilder::new();
        for &bit in bits {
            b.append_bit(bit);
        }
        b.finish()
    }

    /// Build from 64-bit mask blocks: bit `j` of `blocks[k]` is logical
    /// bit `64k + j`. Mask bits at or beyond `nbits` are ignored.
    pub fn from_mask_blocks(nbits: u64, blocks: &[u64]) -> Self {
        debug_assert!(blocks.len() as u64 * 64 >= nbits);
        let mut b = WahBuilder::new();
        let mut remaining = nbits;
        for &m in blocks {
            if remaining == 0 {
                break;
            }
            let take = remaining.min(64) as u32;
            b.append_mask_bits(m, take);
            remaining -= take as u64;
        }
        b.finish()
    }

    /// Build from sorted, disjoint runs of set bits within `[0, nbits)`.
    pub fn from_selection(nbits: u64, sel: &Selection) -> Self {
        let mut b = WahBuilder::new();
        let mut pos = 0u64;
        for r in sel.runs() {
            debug_assert!(r.start >= pos && r.end() <= nbits);
            b.append_bits(false, r.start - pos);
            b.append_bits(true, r.len);
            pos = r.end();
        }
        b.append_bits(false, nbits - pos);
        b.finish()
    }

    /// Logical length in bits.
    pub fn nbits(&self) -> u64 {
        self.nbits
    }

    /// Raw compressed words (for serialization).
    pub fn words_raw(&self) -> &[u32] {
        &self.words
    }

    /// Reconstruct from raw words and logical length (inverse of
    /// [`Self::words_raw`]; the caller must supply well-formed WAH words).
    pub fn from_raw_parts(words: Vec<u32>, nbits: u64) -> Self {
        WahBitVector { words, nbits }
    }

    /// Number of 32-bit words in the compressed representation.
    pub fn num_words(&self) -> usize {
        self.words.len()
    }

    /// Compressed size in bytes (words plus the length header).
    pub fn size_bytes(&self) -> u64 {
        4 * self.words.len() as u64 + 8
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        // Padding bits in the final group are zero by construction, so a
        // straight popcount is exact.
        self.words
            .iter()
            .map(|&w| {
                if w & FILL_FLAG != 0 {
                    if w & FILL_BIT != 0 {
                        GROUP_BITS * (w & FILL_COUNT_MASK) as u64
                    } else {
                        0
                    }
                } else {
                    w.count_ones() as u64
                }
            })
            .sum()
    }

    /// Convert to a run-length [`Selection`] of the set bit positions.
    pub fn to_selection(&self) -> Selection {
        let mut runs: Vec<Run> = Vec::new();
        let mut pos = 0u64;
        let push = |start: u64, len: u64, runs: &mut Vec<Run>| {
            if len == 0 {
                return;
            }
            if let Some(last) = runs.last_mut() {
                if last.end() == start {
                    last.len += len;
                    return;
                }
            }
            runs.push(Run::new(start, len));
        };
        for &w in &self.words {
            if w & FILL_FLAG != 0 {
                let groups = (w & FILL_COUNT_MASK) as u64;
                let span = groups * GROUP_BITS;
                if w & FILL_BIT != 0 {
                    push(pos, span.min(self.nbits.saturating_sub(pos)), &mut runs);
                }
                pos += span;
            } else {
                let mut payload = w;
                while payload != 0 {
                    let lo = payload.trailing_zeros() as u64;
                    // run of consecutive ones starting at lo
                    let shifted = payload >> lo;
                    let ones = shifted.trailing_ones() as u64;
                    let start = pos + lo;
                    let len = ones.min(self.nbits.saturating_sub(start));
                    push(start, len, &mut runs);
                    payload &= !(((1u32 << ones) - 1) << lo);
                }
                pos += GROUP_BITS;
            }
        }
        Selection::from_canonical_runs(runs)
    }

    /// Iterate over the positions of set bits in ascending order.
    pub fn iter_set_bits(&self) -> impl Iterator<Item = u64> + '_ {
        // Reuse the run decoding; selections iterate cheaply.
        self.to_selection().iter_coords().collect::<Vec<_>>().into_iter()
    }

    /// Test a single bit (linear scan; intended for tests and spot checks).
    pub fn get(&self, pos: u64) -> bool {
        debug_assert!(pos < self.nbits);
        let target_group = pos / GROUP_BITS;
        let offset = pos % GROUP_BITS;
        let mut group = 0u64;
        for &w in &self.words {
            if w & FILL_FLAG != 0 {
                let groups = (w & FILL_COUNT_MASK) as u64;
                if target_group < group + groups {
                    return w & FILL_BIT != 0;
                }
                group += groups;
            } else {
                if target_group == group {
                    return w >> offset & 1 != 0;
                }
                group += 1;
            }
        }
        false
    }

    fn binary_op(&self, other: &WahBitVector, op: impl Fn(u32, u32) -> u32) -> WahBitVector {
        self.binary_op_reusing(other, op, Vec::new())
    }

    /// [`Self::binary_op`] writing into a recycled word buffer (cleared
    /// first), so chained operations reach a zero-allocation steady state.
    fn binary_op_reusing(
        &self,
        other: &WahBitVector,
        op: impl Fn(u32, u32) -> u32,
        mut scratch: Vec<u32>,
    ) -> WahBitVector {
        assert_eq!(self.nbits, other.nbits, "bitvector length mismatch");
        let mut a = Cursor::new(self);
        let mut bcur = Cursor::new(other);
        scratch.clear();
        let mut out = WahBuilder { words: scratch, ..WahBuilder::default() };
        let mut remaining_groups = self.nbits.div_ceil(GROUP_BITS);
        while remaining_groups > 0 {
            let (ca, cb) = match (a.peek(), bcur.peek()) {
                (Some(x), Some(y)) => (x, y),
                _ => break,
            };
            match (ca, cb) {
                (Chunk::Fill { bit: ba, groups: ga }, Chunk::Fill { bit: bb, groups: gb }) => {
                    let n = ga.min(gb).min(remaining_groups);
                    let pa = if ba { LITERAL_MASK } else { 0 };
                    let pb = if bb { LITERAL_MASK } else { 0 };
                    let res = op(pa, pb) & LITERAL_MASK;
                    let bits = n * GROUP_BITS;
                    if res == LITERAL_MASK {
                        out.append_bits(true, bits);
                    } else if res == 0 {
                        out.append_bits(false, bits);
                    } else {
                        for _ in 0..n {
                            out.push_group(res);
                            out.nbits += GROUP_BITS;
                        }
                    }
                    a.advance(n);
                    bcur.advance(n);
                    remaining_groups -= n;
                }
                _ => {
                    let pa = match ca {
                        Chunk::Literal(p) => p,
                        Chunk::Fill { bit, .. } => {
                            if bit {
                                LITERAL_MASK
                            } else {
                                0
                            }
                        }
                    };
                    let pb = match cb {
                        Chunk::Literal(p) => p,
                        Chunk::Fill { bit, .. } => {
                            if bit {
                                LITERAL_MASK
                            } else {
                                0
                            }
                        }
                    };
                    let res = op(pa, pb) & LITERAL_MASK;
                    out.push_group(res);
                    out.nbits += GROUP_BITS;
                    a.advance(1);
                    bcur.advance(1);
                    remaining_groups -= 1;
                }
            }
        }
        let mut v = out.finish();
        // The builder counted whole groups; restore the true logical length
        // and clear padding bits that a NOT-like op could have set.
        v.nbits = self.nbits;
        v.clear_padding();
        v
    }

    /// Clear any set bits beyond `nbits` in the final group so popcounts
    /// stay exact.
    fn clear_padding(&mut self) {
        let tail = self.nbits % GROUP_BITS;
        if tail == 0 {
            return;
        }
        // Only the final group can contain padding. Decode the last word;
        // if it is a one-fill or a literal with high bits set, rewrite it.
        let Some(&last) = self.words.last() else { return };
        let keep_mask = (1u32 << tail) - 1;
        if last & FILL_FLAG != 0 {
            if last & FILL_BIT == 0 {
                return; // zero fill: padding already clear
            }
            let groups = (last & FILL_COUNT_MASK) as u64;
            self.words.pop();
            if groups > 1 {
                self.words.push(FILL_FLAG | FILL_BIT | (groups - 1) as u32);
            }
            self.words.push(LITERAL_MASK & keep_mask);
        } else {
            let w = self.words.last_mut().unwrap();
            *w &= keep_mask;
        }
    }

    /// Bitwise AND.
    pub fn and(&self, other: &WahBitVector) -> WahBitVector {
        self.binary_op(other, |a, b| a & b)
    }

    /// Bitwise OR.
    pub fn or(&self, other: &WahBitVector) -> WahBitVector {
        self.binary_op(other, |a, b| a | b)
    }

    /// Bitwise XOR.
    pub fn xor(&self, other: &WahBitVector) -> WahBitVector {
        self.binary_op(other, |a, b| a ^ b)
    }

    /// Bitwise NOT (within the logical length).
    pub fn not(&self) -> WahBitVector {
        let mut out = WahBuilder::new();
        for &w in &self.words {
            if w & FILL_FLAG != 0 {
                let groups = (w & FILL_COUNT_MASK) as u64;
                out.append_bits(w & FILL_BIT == 0, groups * GROUP_BITS);
            } else {
                out.push_group(!w & LITERAL_MASK);
                out.nbits += GROUP_BITS;
            }
        }
        let mut v = out.finish();
        v.nbits = self.nbits;
        v.clear_padding();
        v
    }

    /// OR together many bitvectors (the hot path of a range query: one OR
    /// per fully-covered bin). The accumulator's word buffer ping-pongs
    /// with a scratch buffer, so the whole fold allocates O(1) vectors.
    pub fn or_many<'a, I: IntoIterator<Item = &'a WahBitVector>>(
        nbits: u64,
        vs: I,
    ) -> WahBitVector {
        let mut acc = WahBitVector::zeros(nbits);
        let mut scratch = Vec::new();
        for v in vs {
            acc.or_assign(v, &mut scratch);
        }
        acc
    }

    /// In-place AND: `*self &= other`. The result is computed into
    /// `scratch` (cleared first) and swapped into `self`; `self`'s old
    /// word buffer becomes the next `scratch`, so a conjunction chain
    /// reuses two buffers instead of allocating per AND.
    pub fn and_assign(&mut self, other: &WahBitVector, scratch: &mut Vec<u32>) {
        let buf = std::mem::take(scratch);
        let res = self.binary_op_reusing(other, |a, b| a & b, buf);
        *scratch = std::mem::replace(&mut self.words, res.words);
        self.nbits = res.nbits;
    }

    /// In-place OR: `*self |= other`, with the same two-buffer recycling
    /// as [`Self::and_assign`].
    pub fn or_assign(&mut self, other: &WahBitVector, scratch: &mut Vec<u32>) {
        let buf = std::mem::take(scratch);
        let res = self.binary_op_reusing(other, |a, b| a | b, buf);
        *scratch = std::mem::replace(&mut self.words, res.words);
        self.nbits = res.nbits;
    }

    /// AND together many bitvectors (a conjunction chain over index bins),
    /// mirroring [`Self::or_many`]. The empty conjunction is all ones;
    /// the fold short-circuits once the accumulator is empty. Buffers are
    /// recycled via [`Self::and_assign`], so the chain allocates O(1)
    /// vectors regardless of length.
    pub fn and_many<'a, I: IntoIterator<Item = &'a WahBitVector>>(
        nbits: u64,
        vs: I,
    ) -> WahBitVector {
        let mut it = vs.into_iter();
        let Some(first) = it.next() else {
            return WahBitVector::ones(nbits);
        };
        assert_eq!(first.nbits, nbits, "bitvector length mismatch");
        let mut acc = first.clone();
        let mut scratch = Vec::new();
        for v in it {
            if acc.count_ones() == 0 {
                break;
            }
            acc.and_assign(v, &mut scratch);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(bits: &[bool]) -> Vec<u64> {
        bits.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i as u64).collect()
    }

    #[test]
    fn roundtrip_small_patterns() {
        for pattern in [
            vec![],
            vec![true],
            vec![false],
            vec![true; 31],
            vec![false; 31],
            vec![true; 62],
            vec![true; 100],
            (0..200).map(|i| i % 3 == 0).collect::<Vec<_>>(),
            (0..1000).map(|i| i % 97 < 5).collect::<Vec<_>>(),
        ] {
            let v = WahBitVector::from_bools(&pattern);
            assert_eq!(v.nbits(), pattern.len() as u64);
            assert_eq!(
                v.to_selection().iter_coords().collect::<Vec<_>>(),
                naive(&pattern),
                "pattern len {}",
                pattern.len()
            );
            assert_eq!(v.count_ones(), naive(&pattern).len() as u64);
        }
    }

    #[test]
    fn get_matches_bools() {
        let pattern: Vec<bool> = (0..500).map(|i| (i * 7) % 13 < 4).collect();
        let v = WahBitVector::from_bools(&pattern);
        for (i, &b) in pattern.iter().enumerate() {
            assert_eq!(v.get(i as u64), b, "bit {i}");
        }
    }

    #[test]
    fn long_fills_compress() {
        let n = 1_000_000u64;
        let v = WahBitVector::zeros(n);
        assert!(v.num_words() <= 2, "zeros used {} words", v.num_words());
        let v = WahBitVector::ones(n);
        assert!(v.num_words() <= 2);
        assert_eq!(v.count_ones(), n);
    }

    #[test]
    fn fill_coalescing_across_appends() {
        let mut b = WahBuilder::new();
        for _ in 0..100 {
            b.append_bits(false, 31);
        }
        let v = b.finish();
        assert_eq!(v.num_words(), 1);
        assert_eq!(v.nbits(), 3100);
    }

    #[test]
    fn and_or_xor_match_naive() {
        let a_bits: Vec<bool> = (0..937).map(|i| (i * 11) % 17 < 6).collect();
        let b_bits: Vec<bool> = (0..937).map(|i| (i * 5) % 23 < 9).collect();
        let a = WahBitVector::from_bools(&a_bits);
        let b = WahBitVector::from_bools(&b_bits);

        let and_expect: Vec<u64> = (0..937).filter(|&i| a_bits[i] && b_bits[i]).map(|i| i as u64).collect();
        let or_expect: Vec<u64> = (0..937).filter(|&i| a_bits[i] || b_bits[i]).map(|i| i as u64).collect();
        let xor_expect: Vec<u64> = (0..937).filter(|&i| a_bits[i] ^ b_bits[i]).map(|i| i as u64).collect();

        assert_eq!(a.and(&b).to_selection().iter_coords().collect::<Vec<_>>(), and_expect);
        assert_eq!(a.or(&b).to_selection().iter_coords().collect::<Vec<_>>(), or_expect);
        assert_eq!(a.xor(&b).to_selection().iter_coords().collect::<Vec<_>>(), xor_expect);
        assert_eq!(a.and(&b).nbits(), 937);
    }

    #[test]
    fn not_respects_logical_length() {
        let bits: Vec<bool> = (0..100).map(|i| i % 2 == 0).collect();
        let v = WahBitVector::from_bools(&bits);
        let n = v.not();
        assert_eq!(n.nbits(), 100);
        assert_eq!(n.count_ones(), 50);
        let expect: Vec<u64> = (0..100u64).filter(|i| i % 2 == 1).collect();
        assert_eq!(n.to_selection().iter_coords().collect::<Vec<_>>(), expect);
        // double negation
        assert_eq!(n.not().to_selection(), v.to_selection());
    }

    #[test]
    fn not_of_zeros_is_all_ones_exactly() {
        let v = WahBitVector::zeros(45); // 31 + 14: padding in final group
        let n = v.not();
        assert_eq!(n.count_ones(), 45);
        assert_eq!(n.to_selection().count(), 45);
    }

    #[test]
    fn from_selection_roundtrip() {
        let sel = Selection::from_runs(vec![Run::new(0, 5), Run::new(40, 100), Run::new(500, 1)]);
        let v = WahBitVector::from_selection(1000, &sel);
        assert_eq!(v.to_selection(), sel);
        assert_eq!(v.count_ones(), 106);
    }

    #[test]
    fn mask_blocks_match_bools() {
        for n in [0usize, 1, 31, 63, 64, 65, 128, 200, 313] {
            let pattern: Vec<bool> = (0..n).map(|i| (i * 7) % 13 < 4 || i % 64 > 60).collect();
            let mut blocks = vec![0u64; n.div_ceil(64)];
            for (i, &b) in pattern.iter().enumerate() {
                if b {
                    blocks[i / 64] |= 1 << (i % 64);
                }
            }
            let v = WahBitVector::from_mask_blocks(n as u64, &blocks);
            assert_eq!(v, WahBitVector::from_bools(&pattern), "n = {n}");
        }
        // set bits beyond nbits are ignored
        let v = WahBitVector::from_mask_blocks(10, &[u64::MAX]);
        assert_eq!(v.count_ones(), 10);
    }

    #[test]
    fn append_mask_bits_preserves_fill_compression() {
        let mut b = WahBuilder::new();
        for _ in 0..1000 {
            b.append_mask_bits(0, 64);
        }
        let v = b.finish();
        assert!(v.num_words() <= 3, "all-zero masks used {} words", v.num_words());
        assert_eq!(v.nbits(), 64_000);
        assert_eq!(v.count_ones(), 0);
    }

    #[test]
    fn or_many_unions() {
        let a = WahBitVector::from_selection(100, &Selection::from_span(0, 10));
        let b = WahBitVector::from_selection(100, &Selection::from_span(50, 10));
        let c = WahBitVector::from_selection(100, &Selection::from_span(5, 10));
        let u = WahBitVector::or_many(100, [&a, &b, &c]);
        assert_eq!(u.count_ones(), 25);
    }

    #[test]
    fn and_many_intersects_and_matches_pairwise() {
        let a = WahBitVector::from_selection(100, &Selection::from_span(0, 60));
        let b = WahBitVector::from_selection(100, &Selection::from_span(40, 60));
        let c = WahBitVector::from_selection(100, &Selection::from_span(50, 10));
        let m = WahBitVector::and_many(100, [&a, &b, &c]);
        assert_eq!(m.to_selection(), a.and(&b).and(&c).to_selection());
        assert_eq!(m.count_ones(), 10);
        // empty conjunction is the identity (all ones)
        assert_eq!(WahBitVector::and_many(100, []).count_ones(), 100);
        // disjoint inputs short-circuit to zero
        let d = WahBitVector::from_selection(100, &Selection::from_span(90, 5));
        assert_eq!(WahBitVector::and_many(100, [&a, &d, &b]).count_ones(), 0);
    }

    #[test]
    fn assign_ops_recycle_buffers_and_match_pure_ops() {
        let bits_a: Vec<bool> = (0..937).map(|i| (i * 11) % 17 < 6).collect();
        let bits_b: Vec<bool> = (0..937).map(|i| (i * 5) % 23 < 9).collect();
        let a = WahBitVector::from_bools(&bits_a);
        let b = WahBitVector::from_bools(&bits_b);
        let mut scratch = Vec::new();
        let mut x = a.clone();
        x.and_assign(&b, &mut scratch);
        assert_eq!(x, a.and(&b));
        assert!(!scratch.is_empty(), "old accumulator buffer should be recycled");
        let mut y = a.clone();
        y.or_assign(&b, &mut scratch);
        assert_eq!(y, a.or(&b));
        assert_eq!(y.nbits(), 937);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let a = WahBitVector::zeros(10);
        let b = WahBitVector::zeros(11);
        let _ = a.and(&b);
    }

    #[test]
    fn clustered_data_compresses_much_better_than_scattered() {
        let n = 310_000u64;
        let clustered = WahBitVector::from_selection(n, &Selection::from_span(1000, 30_000));
        let scattered = WahBitVector::from_selection(
            n,
            &Selection::from_sorted_coords((0..30_000u64).map(|i| i * 10)),
        );
        assert_eq!(clustered.count_ones(), scattered.count_ones());
        assert!(
            clustered.size_bytes() * 10 < scattered.size_bytes(),
            "clustered {} vs scattered {}",
            clustered.size_bytes(),
            scattered.size_bytes()
        );
    }
}
