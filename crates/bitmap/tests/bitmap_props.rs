//! Property-based tests: WAH must agree with a naive `Vec<bool>` model,
//! and the binned index must answer range queries exactly (after candidate
//! resolution) for arbitrary data and arbitrary intervals.

use pdc_bitmap::{BinnedBitmapIndex, BinningConfig, WahBitVector};
use pdc_types::{Interval, QueryOp, Selection};
use proptest::prelude::*;

fn bits_strategy() -> impl Strategy<Value = Vec<bool>> {
    prop::collection::vec(any::<bool>(), 0..400)
}

/// Runs-heavy bit patterns (the WAH-favourable case with long fills).
fn runny_bits_strategy() -> impl Strategy<Value = Vec<bool>> {
    prop::collection::vec((any::<bool>(), 1usize..120), 0..12).prop_map(|segments| {
        let mut out = Vec::new();
        for (bit, n) in segments {
            out.extend(std::iter::repeat_n(bit, n));
        }
        out
    })
}

fn naive_positions(bits: &[bool]) -> Vec<u64> {
    bits.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i as u64).collect()
}

proptest! {
    #[test]
    fn wah_roundtrip(bits in bits_strategy()) {
        let v = WahBitVector::from_bools(&bits);
        prop_assert_eq!(v.nbits(), bits.len() as u64);
        prop_assert_eq!(v.to_selection().iter_coords().collect::<Vec<_>>(), naive_positions(&bits));
        prop_assert_eq!(v.count_ones(), naive_positions(&bits).len() as u64);
    }

    #[test]
    fn wah_roundtrip_runny(bits in runny_bits_strategy()) {
        let v = WahBitVector::from_bools(&bits);
        prop_assert_eq!(v.to_selection().iter_coords().collect::<Vec<_>>(), naive_positions(&bits));
    }

    #[test]
    fn wah_ops_match_naive(a in runny_bits_strategy(), b in runny_bits_strategy()) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let va = WahBitVector::from_bools(a);
        let vb = WahBitVector::from_bools(b);
        let and: Vec<u64> = (0..n).filter(|&i| a[i] && b[i]).map(|i| i as u64).collect();
        let or: Vec<u64> = (0..n).filter(|&i| a[i] || b[i]).map(|i| i as u64).collect();
        let xor: Vec<u64> = (0..n).filter(|&i| a[i] ^ b[i]).map(|i| i as u64).collect();
        prop_assert_eq!(va.and(&vb).to_selection().iter_coords().collect::<Vec<_>>(), and);
        prop_assert_eq!(va.or(&vb).to_selection().iter_coords().collect::<Vec<_>>(), or);
        prop_assert_eq!(va.xor(&vb).to_selection().iter_coords().collect::<Vec<_>>(), xor);
    }

    #[test]
    fn wah_not_is_complement(bits in runny_bits_strategy()) {
        let v = WahBitVector::from_bools(&bits);
        let n = v.not();
        prop_assert_eq!(v.count_ones() + n.count_ones(), bits.len() as u64);
        prop_assert!(v.to_selection().intersect(&n.to_selection()).is_empty());
        prop_assert_eq!(n.not().to_selection(), v.to_selection());
    }

    #[test]
    fn wah_from_selection_inverse_of_to_selection(bits in runny_bits_strategy()) {
        let v = WahBitVector::from_bools(&bits);
        let sel = v.to_selection();
        let v2 = WahBitVector::from_selection(bits.len() as u64, &sel);
        prop_assert_eq!(v2.to_selection(), sel);
        prop_assert_eq!(v2.count_ones(), v.count_ones());
    }

    #[test]
    fn index_range_query_is_exact(
        values in prop::collection::vec(-50.0f64..50.0, 1..300),
        lo in -60.0f64..60.0,
        w in 0.0f64..60.0,
        lo_inc in any::<bool>(),
        hi_inc in any::<bool>(),
    ) {
        let idx = BinnedBitmapIndex::build(&values, &BinningConfig::default()).unwrap();
        let iv = Interval {
            lo: Some(pdc_types::interval::Bound { value: lo, inclusive: lo_inc }),
            hi: Some(pdc_types::interval::Bound { value: lo + w, inclusive: hi_inc }),
        };
        let ans = idx.query(&iv);
        let resolved = ans.resolve(&iv, |i| values[i as usize]);
        let exact: Vec<u64> = values
            .iter()
            .enumerate()
            .filter(|(_, &v)| iv.contains(v))
            .map(|(i, _)| i as u64)
            .collect();
        prop_assert_eq!(resolved.iter_coords().collect::<Vec<_>>(), exact);
        // sure hits never include a non-match
        let exact_sel = Selection::from_sorted_coords(
            values.iter().enumerate().filter(|(_, &v)| iv.contains(v)).map(|(i, _)| i as u64),
        );
        prop_assert_eq!(ans.sure.intersect(&exact_sel), ans.sure.clone());
    }

    #[test]
    fn index_one_sided_query_is_exact(
        values in prop::collection::vec(-50.0f64..50.0, 1..300),
        bound in -60.0f64..60.0,
        op in prop::sample::select(vec![QueryOp::Gt, QueryOp::Gte, QueryOp::Lt, QueryOp::Lte, QueryOp::Eq]),
    ) {
        let idx = BinnedBitmapIndex::build(&values, &BinningConfig::default()).unwrap();
        let iv = Interval::from_op(op, bound);
        let resolved = idx.query(&iv).resolve(&iv, |i| values[i as usize]);
        let exact: Vec<u64> = values
            .iter()
            .enumerate()
            .filter(|(_, &v)| iv.contains(v))
            .map(|(i, _)| i as u64)
            .collect();
        prop_assert_eq!(resolved.iter_coords().collect::<Vec<_>>(), exact);
    }

    #[test]
    fn index_serialization_roundtrip(values in prop::collection::vec(-10.0f64..10.0, 1..200)) {
        let idx = BinnedBitmapIndex::build(&values, &BinningConfig::default()).unwrap();
        let bytes = idx.to_bytes();
        prop_assert_eq!(bytes.len() as u64, idx.size_bytes_serialized());
        let back = BinnedBitmapIndex::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, idx);
    }
}
