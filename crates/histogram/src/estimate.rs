//! Selectivity estimation and region pruning with histograms
//! (paper §III-D2).
//!
//! *Region elimination*: only the histogram's min/max are needed — a region
//! whose `[min, max]` does not overlap the query interval has no hits.
//!
//! *Selectivity estimation*: "go through the histogram and find all bins
//! that overlap with the query condition, and aggregate their count. The
//! upper bound of the number of hits includes all bins that fully or
//! partially overlap with the query condition, while the lower bound only
//! counts the fully overlapping bins. Dividing the count by the total
//! number of elements produces the upper and lower bound of the
//! selectivity."

use crate::algorithm1::Histogram;
use pdc_types::Interval;
use serde::{Deserialize, Serialize};

/// Lower/upper bounds on the number of hits for a query interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HitBounds {
    /// Hits guaranteed (bins fully covered by the interval).
    pub lower: u64,
    /// Hits possible (bins fully or partially overlapping the interval).
    pub upper: u64,
}

impl HitBounds {
    /// Zero hits on both bounds.
    pub const ZERO: HitBounds = HitBounds { lower: 0, upper: 0 };

    /// Midpoint estimate, the planner's scalar ordering key.
    pub fn midpoint(&self) -> f64 {
        (self.lower + self.upper) as f64 / 2.0
    }
}

impl Histogram {
    /// Whether the interval can match anything in the histogrammed data —
    /// the region-elimination test. Uses only the observed min/max.
    pub fn overlaps(&self, interval: &Interval) -> bool {
        if self.total() == 0 {
            return false;
        }
        interval.overlaps_range(self.min(), self.max())
    }

    /// Lower/upper bounds on the number of hits for `interval`.
    pub fn estimate_hits(&self, interval: &Interval) -> HitBounds {
        if !self.overlaps(interval) {
            return HitBounds::ZERO;
        }
        let mut lower = 0u64;
        let mut upper = 0u64;
        for k in 0..self.num_bins() {
            let c = self.counts()[k];
            if c == 0 {
                continue;
            }
            let (lo, hi) = self.bin_bounds(k);
            // The bin holds values in [lo, hi). For the covers/overlap
            // tests use the tightest closed range the bin's values can
            // occupy, clipped to the exact observed min/max.
            let bin_max = (hi - f64::EPSILON * hi.abs().max(1.0)).min(self.max());
            let bin_min = lo.max(self.min());
            if !interval.overlaps_range(bin_min, bin_max) {
                continue;
            }
            upper += c;
            if interval.covers_range(bin_min, bin_max) {
                lower += c;
            }
        }
        HitBounds { lower, upper }
    }

    /// Selectivity bounds `(lower, upper)` as fractions of the total
    /// element count.
    pub fn selectivity_bounds(&self, interval: &Interval) -> (f64, f64) {
        let hb = self.estimate_hits(interval);
        if self.total() == 0 {
            return (0.0, 0.0);
        }
        let n = self.total() as f64;
        (hb.lower as f64 / n, hb.upper as f64 / n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm1::HistogramConfig;
    use pdc_types::QueryOp;

    fn uniform(n: usize, lo: f64, hi: f64) -> Vec<f64> {
        (0..n).map(|i| lo + (hi - lo) * (i as f64) / (n as f64)).collect()
    }

    fn exact_hits(data: &[f64], iv: &Interval) -> u64 {
        data.iter().filter(|&&v| iv.contains(v)).count() as u64
    }

    #[test]
    fn bounds_bracket_exact_count_uniform() {
        let data = uniform(100_000, 0.0, 10.0);
        let h = Histogram::build(&data, &HistogramConfig::default()).unwrap();
        for iv in [
            Interval::open(2.1, 2.2),
            Interval::closed(0.0, 10.0),
            Interval::from_op(QueryOp::Gt, 9.5),
            Interval::from_op(QueryOp::Lt, 0.5),
            Interval::open(4.9999, 5.0001),
        ] {
            let exact = exact_hits(&data, &iv);
            let hb = h.estimate_hits(&iv);
            assert!(hb.lower <= exact, "{iv}: lower {} > exact {exact}", hb.lower);
            assert!(hb.upper >= exact, "{iv}: upper {} < exact {exact}", hb.upper);
        }
    }

    #[test]
    fn full_range_estimate_is_exact() {
        let data = uniform(10_000, -5.0, 5.0);
        let h = Histogram::build(&data, &HistogramConfig::default()).unwrap();
        let hb = h.estimate_hits(&Interval::ALL);
        assert_eq!(hb.lower, 10_000);
        assert_eq!(hb.upper, 10_000);
    }

    #[test]
    fn disjoint_interval_estimates_zero() {
        let data = uniform(10_000, 0.0, 1.0);
        let h = Histogram::build(&data, &HistogramConfig::default()).unwrap();
        let hb = h.estimate_hits(&Interval::from_op(QueryOp::Gt, 2.0));
        assert_eq!(hb, HitBounds::ZERO);
        assert!(!h.overlaps(&Interval::from_op(QueryOp::Gt, 2.0)));
    }

    #[test]
    fn selectivity_bounds_are_fractions() {
        let data = uniform(50_000, 0.0, 100.0);
        let h = Histogram::build(&data, &HistogramConfig::default()).unwrap();
        let iv = Interval::open(0.0, 50.0);
        let (lo, hi) = h.selectivity_bounds(&iv);
        assert!(lo <= 0.5 + 1e-9 && hi >= 0.5 - 1e-9, "({lo}, {hi})");
        assert!(lo >= 0.0 && hi <= 1.0);
        // With ~64 bins, bounds should be within a couple of bins' mass.
        assert!(hi - lo < 0.1, "bounds too loose: ({lo}, {hi})");
    }

    #[test]
    fn estimation_orders_queries_correctly() {
        // The planner only needs the *ordering* of selectivities to be
        // right; check a highly selective vs. barely selective interval.
        let data = uniform(100_000, 0.0, 10.0);
        let h = Histogram::build(&data, &HistogramConfig::default()).unwrap();
        let narrow = h.estimate_hits(&Interval::open(5.0, 5.05));
        let wide = h.estimate_hits(&Interval::open(1.0, 9.0));
        assert!(narrow.midpoint() < wide.midpoint());
    }

    #[test]
    fn midpoint_is_average() {
        let hb = HitBounds { lower: 10, upper: 20 };
        assert_eq!(hb.midpoint(), 15.0);
    }

    #[test]
    fn skewed_data_bounds_still_bracket() {
        // Exponential-ish tail like VPIC energy.
        let mut data = Vec::new();
        for i in 0..50_000 {
            let u = (i as f64 + 0.5) / 50_000.0;
            data.push(2.0 - 2.0 * u); // bulk [0,2)
        }
        for i in 0..2_500 {
            let u = (i as f64 + 0.5) / 2_500.0;
            data.push(2.0 - (1.0 - u).ln() / 5.77); // tail above 2
        }
        let h = Histogram::build(&data, &HistogramConfig::default()).unwrap();
        for iv in [
            Interval::open(2.1, 2.2),
            Interval::open(3.5, 3.6),
            Interval::from_op(QueryOp::Gt, 2.0),
        ] {
            let exact = exact_hits(&data, &iv);
            let hb = h.estimate_hits(&iv);
            assert!(hb.lower <= exact && exact <= hb.upper, "{iv}: {hb:?} vs {exact}");
        }
    }
}
