//! Algorithm 1 of the paper: generate a histogram that can be merged into
//! a global histogram.
//!
//! The construction (paper §IV):
//!
//! 1. Randomly sample 10 % of the data to get approximate `min`/`max`
//!    (lines 1–2).
//! 2. Compute the raw bin width `(max-min)/N_bin` and round it **down to a
//!    power of two** `2^x, x ∈ ℤ` (line 3). Different regions may end up
//!    with different widths, but all widths divide each other.
//! 3. Align the first bin boundary to the grid of multiples of the bin
//!    width (the paper anchors boundaries at natural numbers, so every
//!    boundary is of the form `ℕ ± n·2^x`; multiples of `2^x` satisfy
//!    exactly that) (lines 4–5).
//! 4. Count every element into its bin; elements outside the sampled range
//!    widen the histogram (lines 11–18). Time complexity O(N).
//!
//! The resulting number of bins can exceed the requested lower bound
//! `N_bin` — the paper accepts this since selectivity estimation does not
//! require an exact bin count.
//!
//! **Fidelity note on out-of-range values.** Algorithm 1 lines 13–16
//! stretch the *boundary* of the first/last bin to the outlying value,
//! which silently breaks the paper's own grid-alignment invariant for edge
//! bins (and, after merging, can place the outlier's count in the wrong
//! global bin, making the "upper bound" estimate not actually an upper
//! bound). We instead **extend the histogram with additional grid-aligned
//! bins** when a value falls outside the sampled range, coarsening the
//! whole histogram (doubling the bin width, still a power of two) whenever
//! the bin count would exceed [`HistogramConfig::max_bins`]. The observed
//! exact min/max are tracked separately, exactly as the paper requires for
//! region elimination. This keeps every estimate a true lower/upper bound
//! — an invariant our property tests enforce.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Tunables for histogram construction.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HistogramConfig {
    /// Lower bound on the number of bins (`N_bin` in Algorithm 1). The
    /// paper uses 50–100 bins per region depending on region size.
    pub nbins_lower_bound: usize,
    /// Fraction of elements sampled for the approximate min/max (line 1).
    pub sample_fraction: f64,
    /// RNG seed for the sampling step, so builds are reproducible.
    pub seed: u64,
    /// Hard cap on the number of bins; when out-of-range values would push
    /// the histogram past this, the bin width doubles instead.
    pub max_bins: usize,
}

impl Default for HistogramConfig {
    fn default() -> Self {
        Self { nbins_lower_bound: 64, sample_fraction: 0.1, seed: 0x9D0C_51A7, max_bins: 4096 }
    }
}

/// A mergeable histogram per Algorithm 1.
///
/// ```
/// use pdc_histogram::{merge_all, Histogram, HistogramConfig};
/// use pdc_types::Interval;
/// let cfg = HistogramConfig::default();
/// let region_a = Histogram::build(&[0.5, 1.0, 1.5, 2.5], &cfg).unwrap();
/// let region_b = Histogram::build(&[2.0, 2.2, 3.0], &cfg).unwrap();
/// let global = merge_all([&region_a, &region_b]).unwrap();
/// assert_eq!(global.total(), 7);
/// let est = global.estimate_hits(&Interval::closed(2.0, 3.0));
/// assert!(est.lower <= 4 && 4 <= est.upper); // exact count is 4
/// ```
///
/// Bin `k` nominally covers `[first_edge + k·w, first_edge + (k+1)·w)`
/// where `w` is the power-of-two bin width. The first and last bins
/// additionally absorb any values outside the sampled range; the *actual*
/// observed `[min, max]` is stored alongside and is what region pruning
/// uses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Power-of-two bin width (`2^x`, `x` may be negative).
    bin_width: f64,
    /// First nominal bin boundary; an integer multiple of `bin_width`.
    first_edge: f64,
    /// Per-bin element counts.
    counts: Vec<u64>,
    /// Smallest value actually observed.
    min: f64,
    /// Largest value actually observed.
    max: f64,
    /// Total number of elements counted.
    total: u64,
    /// Bin-count cap carried from the build configuration.
    max_bins: usize,
}

/// Round `raw` down to a power of two, clamping the exponent to a sane
/// range so degenerate inputs (tiny or huge ranges) stay finite.
fn round_down_pow2(raw: f64) -> f64 {
    if !raw.is_finite() || raw <= 0.0 {
        return 1.0;
    }
    let exp = raw.log2().floor().clamp(-48.0, 60.0);
    2f64.powi(exp as i32)
}

impl Histogram {
    /// Build a histogram over `values` per Algorithm 1.
    ///
    /// Returns `None` for empty input: an absent histogram means "no data",
    /// which callers treat as an always-prunable region.
    pub fn build(values: &[f64], cfg: &HistogramConfig) -> Option<Histogram> {
        if values.is_empty() {
            return None;
        }
        // Line 1: sample ~10 % of the data for approximate min/max. We
        // always include the first element so the sample is never empty.
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut smin = values[0];
        let mut smax = values[0];
        let frac = cfg.sample_fraction.clamp(0.0, 1.0);
        for &v in values.iter().skip(1) {
            if frac >= 1.0 || rng.gen::<f64>() < frac {
                if v < smin {
                    smin = v;
                }
                if v > smax {
                    smax = v;
                }
            }
        }

        let nbins_req = cfg.nbins_lower_bound.max(1);
        // Line 2-3: bin width, rounded down to a power of two.
        let range = smax - smin;
        let bin_width = if range > 0.0 {
            round_down_pow2(range / nbins_req as f64)
        } else {
            // Constant (as far as the sample saw) data: one nominal bin.
            1.0
        };

        // Lines 4-5: align boundaries to the bin-width grid.
        let first_edge = (smin / bin_width).floor() * bin_width;
        let last_edge = {
            let e = (smax / bin_width).ceil() * bin_width;
            if e > first_edge {
                e
            } else {
                first_edge + bin_width
            }
        };
        // Line 6: actual number of bins (>= requested when range > 0).
        let nbins = ((last_edge - first_edge) / bin_width).round() as usize;
        let nbins = nbins.max(1);

        let mut h = Histogram {
            bin_width,
            first_edge,
            counts: vec![0; nbins],
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            total: 0,
            max_bins: cfg.max_bins.max(nbins).max(2),
        };
        // Lines 11-18: count elements; out-of-range values extend the grid.
        for &v in values {
            h.add(v);
        }
        Some(h)
    }

    /// Count one value (lines 12–17 of Algorithm 1). Values outside the
    /// current boundary range grow the histogram with grid-aligned bins,
    /// coarsening (doubling the bin width) if the cap would be exceeded.
    #[inline]
    pub fn add(&mut self, v: f64) {
        if v.is_nan() {
            return; // NaN carries no position; it is not counted
        }
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        self.total += 1;
        loop {
            let idx = ((v - self.first_edge) / self.bin_width).floor();
            if idx >= 0.0 && idx < self.counts.len() as f64 {
                self.counts[idx as usize] += 1;
                return;
            }
            self.grow_to_cover(v);
        }
    }

    /// Extend the bin array so that `v` falls inside the nominal range,
    /// doubling the bin width first if the extension would exceed the cap.
    fn grow_to_cover(&mut self, v: f64) {
        loop {
            let new_first = (v.min(self.first_edge) / self.bin_width).floor() * self.bin_width;
            let cur_last = self.first_edge + self.counts.len() as f64 * self.bin_width;
            let mut new_last = (v.max(cur_last) / self.bin_width).ceil() * self.bin_width;
            if new_last <= v {
                new_last += self.bin_width;
            }
            let nbins = ((new_last - new_first) / self.bin_width).round();
            if nbins.is_finite() && (nbins as usize) <= self.max_bins {
                let prepend = ((self.first_edge - new_first) / self.bin_width).round() as usize;
                let total_bins = nbins as usize;
                let mut counts = vec![0u64; total_bins];
                counts[prepend..prepend + self.counts.len()].copy_from_slice(&self.counts);
                self.counts = counts;
                self.first_edge = new_first;
                return;
            }
            self.coarsen();
        }
    }

    /// Double the bin width by folding adjacent bin pairs, keeping the
    /// boundary grid aligned to multiples of the new width.
    pub(crate) fn coarsen(&mut self) {
        let new_width = self.bin_width * 2.0;
        let new_first = (self.first_edge / new_width).floor() * new_width;
        // Whether the old first bin sits on the odd half of the new grid.
        let offset = ((self.first_edge - new_first) / self.bin_width).round() as usize;
        let new_len = (self.counts.len() + offset).div_ceil(2);
        let mut counts = vec![0u64; new_len.max(1)];
        for (k, &c) in self.counts.iter().enumerate() {
            counts[(k + offset) / 2] += c;
        }
        self.counts = counts;
        self.bin_width = new_width;
        self.first_edge = new_first;
    }

    /// Power-of-two bin width.
    pub fn bin_width(&self) -> f64 {
        self.bin_width
    }

    /// First nominal bin boundary (multiple of the bin width).
    pub fn first_edge(&self) -> f64 {
        self.first_edge
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.counts.len()
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Smallest observed value.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observed value.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Total number of counted elements.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Bin-count cap carried from the build configuration.
    pub fn max_bins(&self) -> usize {
        self.max_bins
    }

    /// Boundaries `[lo, hi)` of bin `k`; every boundary lies on the grid
    /// of multiples of the bin width.
    pub fn bin_bounds(&self, k: usize) -> (f64, f64) {
        let lo = self.first_edge + k as f64 * self.bin_width;
        (lo, lo + self.bin_width)
    }

    /// In-memory metadata footprint in bytes; histograms are metadata
    /// objects in PDC and their size matters for the metadata service.
    pub fn size_bytes(&self) -> u64 {
        // width + first_edge + min + max + total + counts
        8 * 5 + 8 * self.counts.len() as u64
    }

    /// Validate this histogram against the region it claims to summarize:
    /// the per-bin counts must sum to the recorded total, the total must
    /// not exceed the region length (`<=`, not `==`: NaN elements are not
    /// counted), `min ≤ max` whenever anything was counted, and the bin
    /// geometry must be finite with a positive width. A histogram failing
    /// this check cannot be trusted for pruning or selectivity estimation
    /// and must be rebuilt from the data.
    pub fn self_check(&self, region_len: u64) -> bool {
        let sum: u64 = self.counts.iter().sum();
        sum == self.total
            && self.total <= region_len
            && !self.counts.is_empty()
            && self.bin_width.is_finite()
            && self.bin_width > 0.0
            && self.first_edge.is_finite()
            && (self.total == 0 || (self.min <= self.max && self.min.is_finite() && self.max.is_finite()))
    }

    /// A deterministically corrupted clone for integrity-injection tests:
    /// the mutation always breaks the `Σcounts == total` invariant, so
    /// [`Histogram::self_check`] is guaranteed to reject the result.
    pub fn corrupted_copy(&self, seed: u64) -> Histogram {
        let mut bad = self.clone();
        let bin = (seed as usize) % bad.counts.len();
        bad.counts[bin] += 1 + (seed % 7);
        if seed % 2 == 1 && bad.min < bad.max {
            std::mem::swap(&mut bad.min, &mut bad.max);
        }
        bad
    }

    /// Reconstruct a histogram from persisted raw parts (the snapshot
    /// codec's path). Returns `None` when the parts fail basic validation
    /// — a decoded-from-disk histogram must never poison pruning.
    pub fn from_raw_parts(
        bin_width: f64,
        first_edge: f64,
        counts: Vec<u64>,
        min: f64,
        max: f64,
        total: u64,
        max_bins: usize,
    ) -> Option<Histogram> {
        let h = Histogram { bin_width, first_edge, counts, min, max, total, max_bins };
        let sum: u64 = h.counts.iter().sum();
        (sum == h.total
            && !h.counts.is_empty()
            && h.bin_width.is_finite()
            && h.bin_width > 0.0
            && h.first_edge.is_finite()
            && (h.total == 0 || h.min <= h.max))
        .then_some(h)
    }

    /// Internal constructor used by merging.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        bin_width: f64,
        first_edge: f64,
        counts: Vec<u64>,
        min: f64,
        max: f64,
        total: u64,
        max_bins: usize,
    ) -> Histogram {
        Histogram { bin_width, first_edge, counts, min, max, total, max_bins }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_pow2(w: f64) -> bool {
        let exp = w.log2();
        (exp - exp.round()).abs() < 1e-12
    }

    #[test]
    fn empty_input_yields_none() {
        assert!(Histogram::build(&[], &HistogramConfig::default()).is_none());
    }

    #[test]
    fn bin_width_is_power_of_two() {
        let data: Vec<f64> = (0..10_000).map(|i| (i as f64) * 0.001).collect();
        let h = Histogram::build(&data, &HistogramConfig::default()).unwrap();
        assert!(is_pow2(h.bin_width()), "width {} not a power of two", h.bin_width());
    }

    #[test]
    fn first_edge_is_aligned_to_width_grid() {
        let data: Vec<f64> = (0..5_000).map(|i| 3.7 + (i as f64) * 0.01).collect();
        let h = Histogram::build(&data, &HistogramConfig::default()).unwrap();
        let ratio = h.first_edge() / h.bin_width();
        assert!((ratio - ratio.round()).abs() < 1e-9, "edge {} not on grid {}", h.first_edge(), h.bin_width());
    }

    #[test]
    fn total_equals_input_len_and_counts_sum() {
        let data: Vec<f64> = (0..1234).map(|i| (i % 97) as f64).collect();
        let h = Histogram::build(&data, &HistogramConfig::default()).unwrap();
        assert_eq!(h.total(), 1234);
        assert_eq!(h.counts().iter().sum::<u64>(), 1234);
    }

    #[test]
    fn min_max_are_exact_despite_sampling() {
        // Put an extreme outlier where a 10 % sample will likely miss it;
        // Algorithm 1 lines 13-16 must still record it in min/max.
        let mut data: Vec<f64> = vec![0.5; 2000];
        data[1777] = 1e6;
        data[3] = -1e6;
        let h = Histogram::build(&data, &HistogramConfig::default()).unwrap();
        assert_eq!(h.min(), -1e6);
        assert_eq!(h.max(), 1e6);
        assert_eq!(h.total(), 2000);
    }

    #[test]
    fn nbins_at_least_requested_for_spread_data() {
        let data: Vec<f64> = (0..100_000).map(|i| i as f64).collect();
        let cfg = HistogramConfig { nbins_lower_bound: 64, ..Default::default() };
        let h = Histogram::build(&data, &cfg).unwrap();
        assert!(h.num_bins() >= 64, "got {} bins", h.num_bins());
        // but not absurdly more (rounding down the width at most doubles it)
        assert!(h.num_bins() <= 64 * 2 + 2, "got {} bins", h.num_bins());
    }

    #[test]
    fn constant_data_single_bin() {
        let data = vec![7.25; 500];
        let h = Histogram::build(&data, &HistogramConfig::default()).unwrap();
        assert_eq!(h.total(), 500);
        assert_eq!(h.min(), 7.25);
        assert_eq!(h.max(), 7.25);
        assert_eq!(h.counts().iter().sum::<u64>(), 500);
    }

    #[test]
    fn negative_values_supported() {
        let data: Vec<f64> = (0..10_000).map(|i| -100.0 + (i as f64) * 0.015).collect();
        let h = Histogram::build(&data, &HistogramConfig::default()).unwrap();
        assert!(h.min() < -99.0);
        assert!(h.first_edge() <= h.min());
        assert_eq!(h.total(), 10_000);
    }

    #[test]
    fn bin_bounds_tile_the_range() {
        let data: Vec<f64> = (0..5_000).map(|i| (i as f64) * 0.02).collect();
        let h = Histogram::build(&data, &HistogramConfig::default()).unwrap();
        for k in 0..h.num_bins() - 1 {
            let (_, hi) = h.bin_bounds(k);
            let (lo_next, _) = h.bin_bounds(k + 1);
            assert!((hi - lo_next).abs() < 1e-9);
        }
        let (lo0, _) = h.bin_bounds(0);
        assert!(lo0 <= h.min());
        let (_, hi_last) = h.bin_bounds(h.num_bins() - 1);
        assert!(hi_last > h.max());
    }

    #[test]
    fn outliers_extend_the_grid_not_the_edge_bins() {
        let mut data: Vec<f64> = vec![0.5; 2000];
        data[1777] = 1000.0;
        let h = Histogram::build(&data, &HistogramConfig::default()).unwrap();
        // The outlier must live in a bin whose bounds actually contain it.
        let (_, hi_last) = h.bin_bounds(h.num_bins() - 1);
        assert!(hi_last > 1000.0);
        let (lo0, _) = h.bin_bounds(0);
        assert!(lo0 <= 0.5);
        // grid stays power-of-two aligned
        let exp = h.bin_width().log2();
        assert!((exp - exp.round()).abs() < 1e-12);
        let ratio = h.first_edge() / h.bin_width();
        assert!((ratio - ratio.round()).abs() < 1e-6);
    }

    #[test]
    fn bin_cap_triggers_coarsening() {
        let cfg = HistogramConfig { max_bins: 128, ..Default::default() };
        // Dense cluster plus a far outlier would need thousands of fine
        // bins; the cap forces the width to double instead.
        let mut data: Vec<f64> = (0..5_000).map(|i| (i % 100) as f64 * 0.001).collect();
        data.push(1.0e5);
        let h = Histogram::build(&data, &cfg).unwrap();
        assert!(h.num_bins() <= 128, "bins {}", h.num_bins());
        assert_eq!(h.total(), 5_001);
        assert_eq!(h.max(), 1.0e5);
    }

    #[test]
    fn nan_values_are_ignored() {
        let mut h = Histogram::build(&[1.0, 2.0], &HistogramConfig::default()).unwrap();
        h.add(f64::NAN);
        assert_eq!(h.total(), 2);
        assert_eq!(h.counts().iter().sum::<u64>(), 2);
    }

    #[test]
    fn round_down_pow2_cases() {
        assert_eq!(round_down_pow2(1.0), 1.0);
        assert_eq!(round_down_pow2(1.5), 1.0);
        assert_eq!(round_down_pow2(2.0), 2.0);
        assert_eq!(round_down_pow2(3.99), 2.0);
        assert_eq!(round_down_pow2(0.3), 0.25);
        assert_eq!(round_down_pow2(0.125), 0.125);
        // degenerate inputs stay finite and positive
        assert!(round_down_pow2(0.0) > 0.0);
        assert!(round_down_pow2(f64::NAN) > 0.0);
        assert!(round_down_pow2(f64::INFINITY).is_finite());
    }

    #[test]
    fn size_bytes_tracks_bins() {
        let data: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let h = Histogram::build(&data, &HistogramConfig::default()).unwrap();
        assert_eq!(h.size_bytes(), 40 + 8 * h.num_bins() as u64);
    }

    #[test]
    fn deterministic_given_seed() {
        let data: Vec<f64> = (0..50_000).map(|i| ((i * 31) % 1000) as f64 / 10.0).collect();
        let cfg = HistogramConfig::default();
        let a = Histogram::build(&data, &cfg).unwrap();
        let b = Histogram::build(&data, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn self_check_accepts_freshly_built() {
        let data: Vec<f64> = (0..1000).map(|i| (i % 97) as f64).collect();
        let h = Histogram::build(&data, &HistogramConfig::default()).unwrap();
        assert!(h.self_check(data.len() as u64));
    }

    #[test]
    fn self_check_tolerates_nan_gaps() {
        // NaN elements are skipped by `add`, so total < region_len is fine.
        let h = Histogram::build(&[1.0, 2.0, 3.0], &HistogramConfig::default()).unwrap();
        assert!(h.self_check(5)); // region holds 5 elements, 2 were NaN
        assert!(!h.self_check(2)); // total exceeding region length is not
    }

    #[test]
    fn corrupted_copy_always_fails_self_check() {
        let data: Vec<f64> = (0..1000).map(|i| ((i * 7) % 113) as f64).collect();
        let h = Histogram::build(&data, &HistogramConfig::default()).unwrap();
        for seed in 0..32u64 {
            let bad = h.corrupted_copy(seed);
            assert!(!bad.self_check(data.len() as u64), "seed {seed} escaped detection");
            // deterministic: same seed, same corruption
            assert_eq!(bad, h.corrupted_copy(seed));
        }
    }

    #[test]
    fn from_raw_parts_round_trips_and_rejects_garbage() {
        let data: Vec<f64> = (0..500).map(|i| (i % 41) as f64).collect();
        let h = Histogram::build(&data, &HistogramConfig::default()).unwrap();
        let rebuilt = Histogram::from_raw_parts(
            h.bin_width(),
            h.first_edge(),
            h.counts().to_vec(),
            h.min(),
            h.max(),
            h.total(),
            h.max_bins(),
        )
        .unwrap();
        assert_eq!(rebuilt, h);

        // counts/total mismatch rejected
        assert!(Histogram::from_raw_parts(1.0, 0.0, vec![2, 2], 0.0, 1.0, 5, 64).is_none());
        // non-finite / non-positive geometry rejected
        assert!(Histogram::from_raw_parts(0.0, 0.0, vec![1], 0.0, 0.0, 1, 64).is_none());
        assert!(Histogram::from_raw_parts(f64::NAN, 0.0, vec![1], 0.0, 0.0, 1, 64).is_none());
        // min > max with nonzero total rejected
        assert!(Histogram::from_raw_parts(1.0, 0.0, vec![1], 5.0, 1.0, 1, 64).is_none());
        // empty counts rejected
        assert!(Histogram::from_raw_parts(1.0, 0.0, vec![], 0.0, 0.0, 0, 64).is_none());
    }
}
