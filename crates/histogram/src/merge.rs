//! Merging local histograms into a global histogram (paper §IV).
//!
//! "First identify the histogram with the largest bin width, which becomes
//! the bin width for the resulting global histogram, and then iterate over
//! each bin of all other histograms, and aggregate the bin count into the
//! aggregated histogram. The merged histogram can have more bins than any
//! of the existing ones if there are non-overlapping bin boundaries. The
//! time complexity of merging histograms is also O(N)."
//!
//! Correctness rests on Algorithm 1's invariants: every bin width is a
//! power of two and every boundary sits on the grid of multiples of that
//! width, so a finer histogram's bin never straddles a coarser bin
//! boundary.

use crate::algorithm1::Histogram;

impl Histogram {
    /// Fold `other` into `self`, re-gridding `self` to the coarser of the
    /// two bin widths and extending the boundary range as needed.
    pub fn merge_in_place(&mut self, other: &Histogram) {
        if other.total() == 0 {
            return;
        }
        if self.total() == 0 {
            *self = other.clone();
            return;
        }
        let width = self.bin_width().max(other.bin_width());
        // New aligned range covering both nominal ranges.
        let self_last = self.first_edge() + self.num_bins() as f64 * self.bin_width();
        let other_last = other.first_edge() + other.num_bins() as f64 * other.bin_width();
        let first = (self.first_edge().min(other.first_edge()) / width).floor() * width;
        let last = (self_last.max(other_last) / width).ceil() * width;
        let nbins = (((last - first) / width).round() as usize).max(1);

        let mut counts = vec![0u64; nbins];
        let mut fold = |h: &Histogram| {
            for k in 0..h.num_bins() {
                let c = h.counts()[k];
                if c == 0 {
                    continue;
                }
                // Bin center identifies the containing coarse bin; by the
                // nesting invariant the whole fine bin lands in it.
                let (lo, hi) = h.bin_bounds(k);
                let center = (lo + hi) / 2.0;
                let idx = (((center - first) / width).floor() as isize)
                    .clamp(0, nbins as isize - 1) as usize;
                counts[idx] += c;
            }
        };
        fold(self);
        fold(other);

        let max_bins = self.max_bins().max(other.max_bins());
        let mut merged = Histogram::from_parts(
            width,
            first,
            counts,
            self.min().min(other.min()),
            self.max().max(other.max()),
            self.total() + other.total(),
            max_bins,
        );
        while merged.num_bins() > max_bins {
            merged.coarsen();
        }
        *self = merged;
    }

    /// Merged copy of `self` and `other`.
    pub fn merged(&self, other: &Histogram) -> Histogram {
        let mut out = self.clone();
        out.merge_in_place(other);
        out
    }
}

/// Merge an iterator of histograms into a single global histogram.
///
/// Returns `None` when the iterator is empty. This is what the PDC servers
/// run after the metadata distribution step: all of an object's region
/// histograms fold into one **global histogram**, cached on every server
/// and reused across a series of queries at very low access latency.
pub fn merge_all<'a, I: IntoIterator<Item = &'a Histogram>>(hists: I) -> Option<Histogram> {
    let mut it = hists.into_iter();
    let first = it.next()?;
    let mut acc = first.clone();
    for h in it {
        acc.merge_in_place(h);
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm1::HistogramConfig;
    use pdc_types::Interval;

    fn build(data: &[f64]) -> Histogram {
        Histogram::build(data, &HistogramConfig::default()).unwrap()
    }

    #[test]
    fn merge_preserves_total_min_max() {
        let a = build(&(0..5_000).map(|i| i as f64 * 0.01).collect::<Vec<_>>()); // [0, 50)
        let b = build(&(0..3_000).map(|i| 40.0 + i as f64 * 0.05).collect::<Vec<_>>()); // [40, 190)
        let g = a.merged(&b);
        assert_eq!(g.total(), 8_000);
        assert_eq!(g.counts().iter().sum::<u64>(), 8_000);
        assert_eq!(g.min(), 0.0);
        assert!((g.max() - b.max()).abs() < 1e-9);
    }

    #[test]
    fn merged_width_is_coarser_of_the_two() {
        // Narrow-range region -> small width; wide-range region -> big width.
        let narrow = build(&(0..4_000).map(|i| 1.0 + i as f64 * 1e-4).collect::<Vec<_>>());
        let wide = build(&(0..4_000).map(|i| i as f64).collect::<Vec<_>>());
        assert!(narrow.bin_width() < wide.bin_width());
        let g = narrow.merged(&wide);
        assert_eq!(g.bin_width(), wide.bin_width());
        // still a power of two
        let exp = g.bin_width().log2();
        assert!((exp - exp.round()).abs() < 1e-12);
    }

    #[test]
    fn merge_is_commutative_on_totals_and_estimates() {
        let a = build(&(0..6_000).map(|i| (i % 100) as f64 * 0.37).collect::<Vec<_>>());
        let b = build(&(0..6_000).map(|i| 10.0 + (i % 77) as f64 * 0.53).collect::<Vec<_>>());
        let ab = a.merged(&b);
        let ba = b.merged(&a);
        assert_eq!(ab.total(), ba.total());
        assert_eq!(ab.min(), ba.min());
        assert_eq!(ab.max(), ba.max());
        for iv in [Interval::open(5.0, 15.0), Interval::closed(0.0, 40.0)] {
            let x = ab.estimate_hits(&iv);
            let y = ba.estimate_hits(&iv);
            assert_eq!(x.upper, y.upper, "{iv}");
        }
    }

    #[test]
    fn global_bounds_bracket_exact_across_regions() {
        // Simulate 8 regions with different distributions, merge their
        // local histograms, and verify the global bounds bracket the exact
        // global count — the property the planner depends on.
        let mut all: Vec<f64> = Vec::new();
        let mut hists = Vec::new();
        for r in 0..8 {
            let base = r as f64 * 3.0;
            let region: Vec<f64> =
                (0..10_000).map(|i| base + ((i * 7 + r) % 1000) as f64 / 333.0).collect();
            hists.push(build(&region));
            all.extend_from_slice(&region);
        }
        let global = merge_all(hists.iter()).unwrap();
        assert_eq!(global.total(), all.len() as u64);
        for iv in [
            Interval::open(2.1, 2.2),
            Interval::open(0.0, 12.0),
            Interval::closed(20.0, 30.0),
            Interval::open(23.9, 24.0),
        ] {
            let exact = all.iter().filter(|&&v| iv.contains(v)).count() as u64;
            let hb = global.estimate_hits(&iv);
            assert!(hb.lower <= exact && exact <= hb.upper, "{iv}: {hb:?} vs exact {exact}");
        }
    }

    #[test]
    fn merge_all_empty_is_none() {
        assert!(merge_all(std::iter::empty()).is_none());
    }

    #[test]
    fn merge_all_single_is_identity() {
        let a = build(&[1.0, 2.0, 3.0, 2.5, 1.5]);
        let g = merge_all(std::iter::once(&a)).unwrap();
        assert_eq!(g, a);
    }

    #[test]
    fn merging_many_regions_keeps_bin_count_bounded() {
        // The global histogram may have more bins than any local one, but
        // merging same-scale regions should not blow up the bin count.
        let hists: Vec<Histogram> = (0..64)
            .map(|r| {
                build(
                    &(0..2_000)
                        .map(|i| r as f64 * 0.1 + (i % 500) as f64 / 100.0)
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        let g = merge_all(hists.iter()).unwrap();
        let max_local = hists.iter().map(|h| h.num_bins()).max().unwrap();
        assert!(
            g.num_bins() <= max_local * 8,
            "global bins {} vs max local {}",
            g.num_bins(),
            max_local
        );
        assert_eq!(g.total(), 64 * 2_000);
    }
}
