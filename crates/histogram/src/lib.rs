//! # pdc-histogram
//!
//! Mergeable histograms — the core data structure of the PDC-Query paper
//! (§III-D2 and §IV, Algorithm 1).
//!
//! PDC automatically generates a **local histogram** for every region when
//! data is produced or imported. Local histograms serve two purposes:
//!
//! 1. **Region elimination**: a histogram carries the min/max of its
//!    region, so regions that cannot contain any matching value are never
//!    read from storage.
//! 2. **Selectivity estimation**: summing the counts of bins overlapping a
//!    query interval gives cheap lower/upper bounds on the number of hits,
//!    which the planner uses to order the evaluation of multi-object
//!    queries.
//!
//! The paper's key trick (Algorithm 1) is to build local histograms whose
//! bin widths are **powers of two** and whose bin boundaries are aligned to
//! multiples of the bin width (all boundaries fall in ℕ ± n·2^x). Any two
//! such histograms are *mergeable*: the coarser width is a multiple of the
//! finer, and the boundary grids nest, so local histograms can be folded
//! into a **global histogram** of an entire object in O(bins) without
//! touching the data again.

pub mod algorithm1;
pub mod estimate;
pub mod merge;

pub use algorithm1::{Histogram, HistogramConfig};
pub use estimate::HitBounds;
pub use merge::merge_all;
