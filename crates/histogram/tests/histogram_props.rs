//! Property-based tests for Algorithm 1 histograms: structural invariants,
//! estimation bracketing, and merge correctness on arbitrary data.

use pdc_histogram::{merge_all, Histogram, HistogramConfig};
use pdc_types::Interval;
use proptest::prelude::*;

fn data_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1000.0f64..1000.0, 1..800)
}

fn cfg() -> HistogramConfig {
    HistogramConfig { nbins_lower_bound: 32, sample_fraction: 0.2, seed: 7, max_bins: 1024 }
}

proptest! {
    #[test]
    fn width_is_power_of_two_and_edge_on_grid(data in data_strategy()) {
        let h = Histogram::build(&data, &cfg()).unwrap();
        let exp = h.bin_width().log2();
        prop_assert!((exp - exp.round()).abs() < 1e-12, "width {}", h.bin_width());
        let ratio = h.first_edge() / h.bin_width();
        prop_assert!((ratio - ratio.round()).abs() < 1e-6, "edge {} width {}", h.first_edge(), h.bin_width());
    }

    #[test]
    fn total_and_minmax_exact(data in data_strategy()) {
        let h = Histogram::build(&data, &cfg()).unwrap();
        prop_assert_eq!(h.total(), data.len() as u64);
        prop_assert_eq!(h.counts().iter().sum::<u64>(), data.len() as u64);
        let exact_min = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let exact_max = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(h.min(), exact_min);
        prop_assert_eq!(h.max(), exact_max);
    }

    #[test]
    fn estimate_brackets_exact(data in data_strategy(), lo in -1100.0f64..1100.0, w in 0.0f64..500.0) {
        let h = Histogram::build(&data, &cfg()).unwrap();
        let iv = Interval::closed(lo, lo + w);
        let exact = data.iter().filter(|&&v| iv.contains(v)).count() as u64;
        let hb = h.estimate_hits(&iv);
        prop_assert!(hb.lower <= exact, "lower {} > exact {}", hb.lower, exact);
        prop_assert!(hb.upper >= exact, "upper {} < exact {}", hb.upper, exact);
    }

    #[test]
    fn pruning_never_discards_hits(data in data_strategy(), lo in -1100.0f64..1100.0, w in 0.0f64..500.0) {
        let h = Histogram::build(&data, &cfg()).unwrap();
        let iv = Interval::open(lo, lo + w);
        let exact = data.iter().filter(|&&v| iv.contains(v)).count() as u64;
        if exact > 0 {
            prop_assert!(h.overlaps(&iv), "pruned a region with {} hits", exact);
        }
    }

    #[test]
    fn merge_matches_monolithic_bracketing(
        a in data_strategy(),
        b in data_strategy(),
        c in data_strategy(),
        lo in -1100.0f64..1100.0,
        w in 0.0f64..800.0,
    ) {
        let ha = Histogram::build(&a, &cfg()).unwrap();
        let hb = Histogram::build(&b, &cfg()).unwrap();
        let hc = Histogram::build(&c, &cfg()).unwrap();
        let g = merge_all([&ha, &hb, &hc]).unwrap();

        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);

        prop_assert_eq!(g.total(), all.len() as u64);
        let exact_min = all.iter().cloned().fold(f64::INFINITY, f64::min);
        let exact_max = all.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(g.min(), exact_min);
        prop_assert_eq!(g.max(), exact_max);

        let iv = Interval::closed(lo, lo + w);
        let exact = all.iter().filter(|&&v| iv.contains(v)).count() as u64;
        let est = g.estimate_hits(&iv);
        prop_assert!(est.lower <= exact && exact <= est.upper,
            "global bounds {:?} do not bracket exact {}", est, exact);
    }

    #[test]
    fn merge_associativity_on_aggregates(a in data_strategy(), b in data_strategy(), c in data_strategy()) {
        let ha = Histogram::build(&a, &cfg()).unwrap();
        let hb = Histogram::build(&b, &cfg()).unwrap();
        let hc = Histogram::build(&c, &cfg()).unwrap();
        let left = ha.merged(&hb).merged(&hc);
        let right = ha.merged(&hb.merged(&hc));
        prop_assert_eq!(left.total(), right.total());
        prop_assert_eq!(left.min(), right.min());
        prop_assert_eq!(left.max(), right.max());
    }
}
