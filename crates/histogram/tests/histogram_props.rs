//! Property-based tests for Algorithm 1 histograms: structural invariants,
//! estimation bracketing, and merge correctness on arbitrary data.

use pdc_histogram::{merge_all, Histogram, HistogramConfig};
use pdc_types::Interval;
use proptest::prelude::*;

fn data_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1000.0f64..1000.0, 1..800)
}

fn cfg() -> HistogramConfig {
    HistogramConfig { nbins_lower_bound: 32, sample_fraction: 0.2, seed: 7, max_bins: 1024 }
}

proptest! {
    #[test]
    fn width_is_power_of_two_and_edge_on_grid(data in data_strategy()) {
        let h = Histogram::build(&data, &cfg()).unwrap();
        let exp = h.bin_width().log2();
        prop_assert!((exp - exp.round()).abs() < 1e-12, "width {}", h.bin_width());
        let ratio = h.first_edge() / h.bin_width();
        prop_assert!((ratio - ratio.round()).abs() < 1e-6, "edge {} width {}", h.first_edge(), h.bin_width());
    }

    #[test]
    fn total_and_minmax_exact(data in data_strategy()) {
        let h = Histogram::build(&data, &cfg()).unwrap();
        prop_assert_eq!(h.total(), data.len() as u64);
        prop_assert_eq!(h.counts().iter().sum::<u64>(), data.len() as u64);
        let exact_min = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let exact_max = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(h.min(), exact_min);
        prop_assert_eq!(h.max(), exact_max);
    }

    #[test]
    fn estimate_brackets_exact(data in data_strategy(), lo in -1100.0f64..1100.0, w in 0.0f64..500.0) {
        let h = Histogram::build(&data, &cfg()).unwrap();
        let iv = Interval::closed(lo, lo + w);
        let exact = data.iter().filter(|&&v| iv.contains(v)).count() as u64;
        let hb = h.estimate_hits(&iv);
        prop_assert!(hb.lower <= exact, "lower {} > exact {}", hb.lower, exact);
        prop_assert!(hb.upper >= exact, "upper {} < exact {}", hb.upper, exact);
    }

    #[test]
    fn pruning_never_discards_hits(data in data_strategy(), lo in -1100.0f64..1100.0, w in 0.0f64..500.0) {
        let h = Histogram::build(&data, &cfg()).unwrap();
        let iv = Interval::open(lo, lo + w);
        let exact = data.iter().filter(|&&v| iv.contains(v)).count() as u64;
        if exact > 0 {
            prop_assert!(h.overlaps(&iv), "pruned a region with {} hits", exact);
        }
    }

    #[test]
    fn merge_matches_monolithic_bracketing(
        a in data_strategy(),
        b in data_strategy(),
        c in data_strategy(),
        lo in -1100.0f64..1100.0,
        w in 0.0f64..800.0,
    ) {
        let ha = Histogram::build(&a, &cfg()).unwrap();
        let hb = Histogram::build(&b, &cfg()).unwrap();
        let hc = Histogram::build(&c, &cfg()).unwrap();
        let g = merge_all([&ha, &hb, &hc]).unwrap();

        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);

        prop_assert_eq!(g.total(), all.len() as u64);
        let exact_min = all.iter().cloned().fold(f64::INFINITY, f64::min);
        let exact_max = all.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(g.min(), exact_min);
        prop_assert_eq!(g.max(), exact_max);

        let iv = Interval::closed(lo, lo + w);
        let exact = all.iter().filter(|&&v| iv.contains(v)).count() as u64;
        let est = g.estimate_hits(&iv);
        prop_assert!(est.lower <= exact && exact <= est.upper,
            "global bounds {:?} do not bracket exact {}", est, exact);
    }

    #[test]
    fn merge_associativity_on_aggregates(a in data_strategy(), b in data_strategy(), c in data_strategy()) {
        let ha = Histogram::build(&a, &cfg()).unwrap();
        let hb = Histogram::build(&b, &cfg()).unwrap();
        let hc = Histogram::build(&c, &cfg()).unwrap();
        let left = ha.merged(&hb).merged(&hc);
        let right = ha.merged(&hb.merged(&hc));
        prop_assert_eq!(left.total(), right.total());
        prop_assert_eq!(left.min(), right.min());
        prop_assert_eq!(left.max(), right.max());
    }

    // ---- streaming-ingest merge laws (ISSUE 6 satellite) -----------------
    //
    // The incremental histogram maintenance of the ingest path rests on
    // merge being a commutative monoid *bit-exactly*, not just on
    // aggregates: the per-append delta fold and a from-scratch re-merge of
    // region histograms are two different association orders of the same
    // operands, so any bit drift between them would make the metadata
    // depend on ingest history.

    /// Commutativity: the equal-width re-gridding (coarser of the two
    /// widths, union of the aligned ranges) is symmetric in its operands,
    /// so the merged histogram is bit-identical either way round.
    #[test]
    fn merge_commutes_bit_exactly(a in data_strategy(), b in data_strategy()) {
        let ha = Histogram::build(&a, &cfg()).unwrap();
        let hb = Histogram::build(&b, &cfg()).unwrap();
        prop_assert_eq!(ha.merged(&hb), hb.merged(&ha));
    }

    /// Associativity, bit-exactly. Holds whenever no intermediate merge
    /// coarsens past `max_bins` (the nested power-of-two grids make the
    /// center-based count folding compose); `wide_cfg` keeps the cap out
    /// of reach, which is also the regime the ingest path runs in.
    #[test]
    fn merge_associates_bit_exactly(a in data_strategy(), b in data_strategy(), c in data_strategy()) {
        let ha = Histogram::build(&a, &wide_cfg()).unwrap();
        let hb = Histogram::build(&b, &wide_cfg()).unwrap();
        let hc = Histogram::build(&c, &wide_cfg()).unwrap();
        prop_assert_eq!(ha.merged(&hb).merged(&hc), ha.merged(&hb.merged(&hc)));
    }

    /// Merge-vs-rebuild on a float stream: simulate the append metadata
    /// update — the tail region's histogram becomes `tail ⊕ delta` and the
    /// delta folds into the incrementally-maintained global — and demand
    /// the global is bit-identical to a from-scratch `merge_all` over the
    /// updated region histograms (what a full rebuild computes).
    #[test]
    fn ingest_fold_matches_rebuild_floats(
        regions in prop::collection::vec(data_strategy(), 1..6),
        delta in data_strategy(),
    ) {
        let hists: Vec<Histogram> =
            regions.iter().map(|r| Histogram::build(r, &wide_cfg()).unwrap()).collect();
        let hd = Histogram::build(&delta, &wide_cfg()).unwrap();

        // Incremental path: fold the delta into the existing global.
        let incremental = merge_all(hists.iter()).unwrap().merged(&hd);

        // Rebuild path: replace the tail histogram, re-merge everything.
        let mut rebuilt = hists.clone();
        let tail = rebuilt.len() - 1;
        rebuilt[tail] = rebuilt[tail].merged(&hd);
        let remerged = merge_all(rebuilt.iter()).unwrap();

        prop_assert_eq!(incremental, remerged);
    }

    /// The same law on integer streams (ints travel the ingest path as
    /// their exact f64 images, so the merge must stay bit-exact there too).
    #[test]
    fn ingest_fold_matches_rebuild_ints(
        regions in prop::collection::vec(int_stream(), 1..6),
        delta in int_stream(),
    ) {
        let to_f64 = |v: &Vec<i64>| v.iter().map(|&x| x as f64).collect::<Vec<_>>();
        let hists: Vec<Histogram> =
            regions.iter().map(|r| Histogram::build(&to_f64(r), &wide_cfg()).unwrap()).collect();
        let hd = Histogram::build(&to_f64(&delta), &wide_cfg()).unwrap();

        let incremental = merge_all(hists.iter()).unwrap().merged(&hd);
        let mut rebuilt = hists.clone();
        let tail = rebuilt.len() - 1;
        rebuilt[tail] = rebuilt[tail].merged(&hd);
        prop_assert_eq!(incremental, merge_all(rebuilt.iter()).unwrap());
    }

    /// Chunk-order irrelevance for a whole ingest schedule: folding chunk
    /// histograms left-to-right (what repeated appends do) is bit-identical
    /// to `merge_all` in any association, and to the reversed fold.
    #[test]
    fn chunked_fold_is_order_insensitive(chunks in prop::collection::vec(data_strategy(), 2..8)) {
        let hists: Vec<Histogram> =
            chunks.iter().map(|c| Histogram::build(c, &wide_cfg()).unwrap()).collect();
        let forward = merge_all(hists.iter()).unwrap();
        let reversed = merge_all(hists.iter().rev()).unwrap();
        prop_assert_eq!(&forward, &reversed);
        // Pairwise tree association.
        let mut layer = hists;
        while layer.len() > 1 {
            layer = layer
                .chunks(2)
                .map(|p| if p.len() == 2 { p[0].merged(&p[1]) } else { p[0].clone() })
                .collect();
        }
        prop_assert_eq!(&forward, &layer[0]);
    }
}

/// A merge-law config with the bin cap far out of reach: no intermediate
/// coarsening, the regime streaming ingest operates in. Seed pinned.
fn wide_cfg() -> HistogramConfig {
    HistogramConfig { nbins_lower_bound: 32, sample_fraction: 0.2, seed: 7, max_bins: 1 << 20 }
}

/// Integer-valued streams (exact f64 images).
fn int_stream() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(-100_000i64..100_000, 1..800)
}
