//! K-way slot placement: rendezvous hashing over a rack→server
//! pseudo-topology, with elastic membership.
//!
//! Query work is partitioned into **assignment slots** (slot `s` owns the
//! regions with `r % num_slots == s`). Single-home scheduling maps slot
//! `s` to server `s`; a [`Placement`] generalizes that to an ordered
//! **replica set** of `k` servers per slot, DAOS-pool-map style:
//!
//! * The **anchor** of slot `s` is server `s % n_anchor` (the initial
//!   server count). While the anchor is a live member it is the slot's
//!   rank-0 replica, so `k = 1` on the initial membership degenerates to
//!   exactly the classic single-home layout — bit-for-bit.
//! * Backup ranks are filled by **rendezvous (HRW) hashing**: every
//!   member scores `hash(seed, slot, server)` and the highest scores
//!   win. HRW gives minimal movement on membership change — a joining
//!   server only steals the slots it now scores highest on, a leaving
//!   server only releases its own.
//! * Servers live in **racks** (`server / rack_size`); backup selection
//!   prefers candidates whose rack is not already represented in the
//!   slot's replica set, so one rack failure cannot take out a whole
//!   replica set (when the membership spans multiple racks).
//! * Backups **de-collide per anchor family**: the slots anchored at the
//!   same server cycle their rank-`r` backups through distinct servers.
//!   When the anchor dies, its slots fail over to *different* backups,
//!   so the inherited load spreads instead of doubling one server.
//!
//! Everything is a pure function of `(seed, num_slots, n_anchor, k,
//! membership)`: same seed ⇒ same layout, on every host.

use std::collections::HashMap;

/// Servers per rack in the pseudo-topology (`rack = server / RACK_SIZE`).
pub const RACK_SIZE: u32 = 4;

/// One slot's replica-set change produced by a membership transition.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SlotChange {
    /// The slot whose replica set changed.
    pub slot: u32,
    /// Servers that newly joined the replica set (need a copy of the
    /// slot's regions).
    pub added: Vec<u32>,
    /// Servers that left the replica set (their copy is released).
    pub removed: Vec<u32>,
}

/// The migration work a membership change implies: one entry per slot
/// whose replica set changed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MigrationPlan {
    /// Per-slot replica-set diffs (slots with identical sets are absent).
    pub changes: Vec<SlotChange>,
}

impl MigrationPlan {
    /// Slots that gained at least one new replica (the ones whose regions
    /// must be copied somewhere).
    pub fn slots_gaining_replicas(&self) -> Vec<u32> {
        self.changes.iter().filter(|c| !c.added.is_empty()).map(|c| c.slot).collect()
    }
}

/// Deterministic k-way slot→replica-set placement over an elastic
/// membership.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    num_slots: u32,
    n_anchor: u32,
    k: u32,
    seed: u64,
    members: Vec<u32>,
    sets: Vec<Vec<u32>>,
}

/// SplitMix64 finalizer — the same mixer the fault plans use, reproduced
/// here so placement stays self-contained.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The rendezvous score of `server` for `slot` under `seed`.
fn hrw(seed: u64, slot: u32, server: u32) -> u64 {
    mix64(seed ^ (u64::from(slot) << 32) ^ u64::from(server) ^ 0xA076_1D64_78BD_642F)
}

/// The rack a server lives in.
pub fn rack_of(server: u32) -> u32 {
    server / RACK_SIZE
}

impl Placement {
    /// Build a placement for `num_slots` slots over the initial membership
    /// `0..n_anchor`, `k` replicas per slot, deterministic in `seed`.
    pub fn new(num_slots: u32, n_anchor: u32, k: u32, seed: u64) -> Self {
        let mut p = Self {
            num_slots,
            n_anchor: n_anchor.max(1),
            k: k.max(1),
            seed,
            members: (0..n_anchor.max(1)).collect(),
            sets: Vec::new(),
        };
        p.rebuild();
        p
    }

    /// Replicas per slot this placement targets.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of assignment slots.
    pub fn num_slots(&self) -> u32 {
        self.num_slots
    }

    /// The current membership, sorted ascending.
    pub fn members(&self) -> &[u32] {
        &self.members
    }

    /// Whether `server` is currently a member.
    pub fn is_member(&self, server: u32) -> bool {
        self.members.binary_search(&server).is_ok()
    }

    /// The ordered replica set of `slot` (rank 0 first). Length is
    /// `min(k, members)`.
    pub fn replicas(&self, slot: u32) -> &[u32] {
        &self.sets[slot as usize]
    }

    /// All replica sets, indexed by slot.
    pub fn replica_sets(&self) -> &[Vec<u32>] {
        &self.sets
    }

    /// Admit `server` into the membership; returns the slots whose
    /// replica sets changed. No-op plan when already a member.
    pub fn join(&mut self, server: u32) -> MigrationPlan {
        if self.is_member(server) {
            return MigrationPlan::default();
        }
        let before = self.sets.clone();
        let at = self.members.partition_point(|&m| m < server);
        self.members.insert(at, server);
        self.rebuild();
        self.diff(&before)
    }

    /// Remove `server` from the membership; returns the slots whose
    /// replica sets changed. No-op plan when not a member. The last
    /// member cannot leave.
    pub fn leave(&mut self, server: u32) -> MigrationPlan {
        let Ok(at) = self.members.binary_search(&server) else {
            return MigrationPlan::default();
        };
        assert!(self.members.len() > 1, "the last member cannot leave the placement");
        let before = self.sets.clone();
        self.members.remove(at);
        self.rebuild();
        self.diff(&before)
    }

    fn diff(&self, before: &[Vec<u32>]) -> MigrationPlan {
        let mut changes = Vec::new();
        for (slot, (old, new)) in before.iter().zip(&self.sets).enumerate() {
            if old == new {
                continue;
            }
            let added = new.iter().copied().filter(|s| !old.contains(s)).collect();
            let removed = old.iter().copied().filter(|s| !new.contains(s)).collect();
            changes.push(SlotChange { slot: slot as u32, added, removed });
        }
        MigrationPlan { changes }
    }

    /// Recompute every slot's replica set from the current membership.
    fn rebuild(&mut self) {
        let m = self.members.len();
        let want = (self.k as usize).min(m);
        // Per-(anchor, rank) de-collision cycles: servers already used as
        // the rank-`r` backup for another slot of the same anchor.
        let mut used: HashMap<(u32, usize), Vec<u32>> = HashMap::new();
        self.sets = (0..self.num_slots)
            .map(|slot| {
                let anchor = slot % self.n_anchor;
                let mut set: Vec<u32> = Vec::with_capacity(want);
                if self.is_member(anchor) {
                    set.push(anchor);
                }
                // Preference order: HRW score descending, id as the tie
                // break — deterministic and stable under membership change.
                let mut prefs: Vec<u32> =
                    self.members.iter().copied().filter(|&q| Some(q) != set.first().copied()).collect();
                prefs.sort_by_key(|&q| (std::cmp::Reverse(hrw(self.seed, slot, q)), q));
                while set.len() < want {
                    let rank = set.len();
                    let cycle = used.entry((anchor, rank)).or_default();
                    let fresh = |q: &u32, cycle: &[u32]| !set.contains(q) && !cycle.contains(q);
                    let racks: Vec<u32> = set.iter().map(|&s| rack_of(s)).collect();
                    // Pass 1: unused this cycle AND rack-diverse; pass 2:
                    // unused this cycle; pass 3: any remaining candidate
                    // (starts a new de-collision cycle).
                    let pick = prefs
                        .iter()
                        .find(|q| fresh(q, cycle) && !racks.contains(&rack_of(**q)))
                        .or_else(|| prefs.iter().find(|q| fresh(q, cycle)))
                        .or_else(|| prefs.iter().find(|q| !set.contains(q)))
                        .copied();
                    let Some(pick) = pick else { break };
                    if cycle.contains(&pick) {
                        cycle.clear();
                    }
                    cycle.push(pick);
                    set.push(pick);
                }
                set
            })
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replication_same_seed_same_layout() {
        let a = Placement::new(48, 6, 3, 42);
        let b = Placement::new(48, 6, 3, 42);
        assert_eq!(a.replica_sets(), b.replica_sets());
        let c = Placement::new(48, 6, 3, 43);
        assert_ne!(a.replica_sets(), c.replica_sets(), "seed must matter");
    }

    #[test]
    fn replication_k1_degenerates_to_single_home() {
        let p = Placement::new(6, 6, 1, 7);
        for slot in 0..6 {
            assert_eq!(p.replicas(slot), &[slot], "slot {slot} must live on its anchor");
        }
    }

    #[test]
    fn replication_sets_are_distinct_and_sized() {
        for k in 1..=4u32 {
            let p = Placement::new(40, 8, k, 1);
            for slot in 0..40 {
                let set = p.replicas(slot);
                assert_eq!(set.len(), k.min(8) as usize);
                let mut dedup = set.to_vec();
                dedup.sort_unstable();
                dedup.dedup();
                assert_eq!(dedup.len(), set.len(), "slot {slot} set {set:?} has duplicates");
                assert_eq!(set[0], slot % 8, "anchor must lead the set");
            }
        }
    }

    #[test]
    fn replication_backups_of_one_anchor_spread_over_distinct_servers() {
        // 6 servers, spread 5 (30 slots): the five slots anchored at any
        // one server must use five distinct rank-1 backups, so an anchor
        // death spreads its load instead of doubling one survivor.
        let p = Placement::new(30, 6, 2, 9);
        for anchor in 0..6u32 {
            let backups: Vec<u32> =
                (0..30).filter(|s| s % 6 == anchor).map(|s| p.replicas(s)[1]).collect();
            let mut dedup = backups.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), backups.len(), "anchor {anchor} backups collide: {backups:?}");
        }
    }

    #[test]
    fn replication_backups_prefer_a_different_rack() {
        // 8 servers = 2 racks of 4: every rank-1 backup must sit in the
        // other rack from its anchor.
        let p = Placement::new(16, 8, 2, 5);
        for slot in 0..16 {
            let set = p.replicas(slot);
            assert_ne!(rack_of(set[0]), rack_of(set[1]), "slot {slot} set {set:?} same rack");
        }
    }

    #[test]
    fn replication_leave_then_join_restores_layout() {
        let mut p = Placement::new(24, 6, 2, 11);
        let original = p.replica_sets().to_vec();
        let out = p.leave(3);
        assert!(!out.changes.is_empty());
        assert!(p.replica_sets().iter().all(|s| !s.contains(&3)));
        assert!(p.replica_sets().iter().all(|s| s.len() == 2));
        let back = p.join(3);
        assert!(!back.changes.is_empty());
        assert_eq!(p.replica_sets(), &original[..], "join must undo leave exactly");
    }

    #[test]
    fn replication_join_extends_membership_and_takes_load() {
        let mut p = Placement::new(30, 6, 2, 13);
        let plan = p.join(6);
        assert!(p.is_member(6));
        let gained = plan.slots_gaining_replicas();
        assert!(!gained.is_empty(), "a joining server must take over some slots");
        let holding: usize =
            p.replica_sets().iter().filter(|s| s.contains(&6)).count();
        assert!(holding > 0);
        // HRW minimal movement: slots whose sets did not change stay put.
        assert!(plan.changes.len() < 30, "join must not reshuffle every slot");
    }

    #[test]
    fn replication_migration_plan_is_consistent() {
        let mut p = Placement::new(24, 6, 3, 17);
        let before = p.replica_sets().to_vec();
        let plan = p.leave(1);
        for c in &plan.changes {
            let old = &before[c.slot as usize];
            let new = p.replicas(c.slot);
            for a in &c.added {
                assert!(!old.contains(a) && new.contains(a));
            }
            for r in &c.removed {
                assert!(old.contains(r) && !new.contains(r));
            }
        }
        // Every changed slot is reported; unchanged slots are not.
        for slot in 0..24u32 {
            let changed = before[slot as usize] != p.replicas(slot);
            assert_eq!(changed, plan.changes.iter().any(|c| c.slot == slot));
        }
    }

    #[test]
    fn replication_more_replicas_than_members_clamps() {
        let p = Placement::new(8, 2, 5, 3);
        for slot in 0..8 {
            assert_eq!(p.replicas(slot).len(), 2);
        }
    }
}
