//! The logical server pool.

use parking_lot::{Mutex, RwLock};
use pdc_types::ServerId;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A handler panic caught during [`ServerPool::try_broadcast`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerPanic {
    /// The server whose handler panicked.
    pub server: ServerId,
    /// The panic payload, when it was a string.
    pub message: String,
}

impl std::fmt::Display for ServerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "server {} panicked: {}", self.server.raw(), self.message)
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A pool of logical PDC servers with persistent per-server state,
/// dispatched over real worker threads. The pool is **elastic**: servers
/// can be added at runtime ([`Self::add_server`]) without disturbing the
/// existing states — server ids are stable for the pool's lifetime.
pub struct ServerPool<S> {
    states: RwLock<Vec<Arc<Mutex<S>>>>,
    worker_threads: usize,
}

impl<S: Send> ServerPool<S> {
    /// Create a pool of `num_servers` logical servers, initializing each
    /// server's state with `init`.
    pub fn new(num_servers: u32, init: impl Fn(ServerId) -> S) -> Self {
        let states =
            (0..num_servers).map(|i| Arc::new(Mutex::new(init(ServerId(i))))).collect();
        let worker_threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        Self { states: RwLock::new(states), worker_threads }
    }

    /// Number of logical servers.
    pub fn num_servers(&self) -> u32 {
        self.states.read().len() as u32
    }

    /// Grow the pool by one logical server (elastic scale-out); returns
    /// the new server's id. Existing states are untouched, in-flight
    /// broadcasts on other threads keep their own snapshot of the pool.
    pub fn add_server(&self, init: impl FnOnce(ServerId) -> S) -> ServerId {
        let mut states = self.states.write();
        let id = ServerId(states.len() as u32);
        states.push(Arc::new(Mutex::new(init(id))));
        id
    }

    /// Override the number of real worker threads (defaults to the host
    /// parallelism).
    pub fn with_worker_threads(mut self, n: usize) -> Self {
        self.worker_threads = n.max(1);
        self
    }

    /// A point-in-time snapshot of the server states (membership changes
    /// after the snapshot do not affect the broadcast using it).
    fn snapshot(&self) -> Vec<Arc<Mutex<S>>> {
        self.states.read().clone()
    }

    /// Run `handler` once per logical server ("broadcast"), giving it the
    /// server's id and exclusive access to its persistent state. Results
    /// are returned indexed by server. Handlers run concurrently across
    /// worker threads; each logical server runs exactly once. With a
    /// single worker the dispatch runs inline on the caller's thread —
    /// spawning an OS thread per broadcast on a 1-core host costs more
    /// than the whole handler sweep.
    pub fn broadcast<R, F>(&self, handler: F) -> Vec<R>
    where
        R: Send,
        F: Fn(ServerId, &mut S) -> R + Sync,
    {
        let states = self.snapshot();
        let n = states.len();
        let workers = self.worker_threads.min(n).max(1);
        if workers == 1 {
            return states
                .iter()
                .enumerate()
                .map(|(i, s)| handler(ServerId(i as u32), &mut s.lock()))
                .collect();
        }
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let mut state = states[i].lock();
                    let r = handler(ServerId(i as u32), &mut state);
                    *results[i].lock() = Some(r);
                });
            }
        });
        results
            .into_iter()
            .map(|m| m.into_inner().expect("every server produced a result"))
            .collect()
    }

    /// Like [`Self::broadcast`], but fallible per server: a handler that
    /// panics is isolated with `catch_unwind` — the panic kills neither
    /// the worker thread (which moves on to the next queued server) nor
    /// the broadcast, and the panicking server's slot reports
    /// [`ServerPanic`] while every other server still returns its result.
    ///
    /// The panicked server's state lock recovers from the poison (see the
    /// pool's Mutex), so the server stays addressable afterwards; whether
    /// its state is still coherent is the caller's policy (the query
    /// engine treats a panicked server as failed and reassigns its work).
    pub fn try_broadcast<R, F>(&self, handler: F) -> Vec<Result<R, ServerPanic>>
    where
        R: Send,
        F: Fn(ServerId, &mut S) -> R + Sync,
    {
        let states = self.snapshot();
        let n = states.len();
        let workers = self.worker_threads.min(n).max(1);
        if workers == 1 {
            return states
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let r = {
                        let mut state = s.lock();
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            handler(ServerId(i as u32), &mut state)
                        }))
                    };
                    r.map_err(|payload| ServerPanic {
                        server: ServerId(i as u32),
                        message: panic_message(&*payload),
                    })
                })
                .collect();
        }
        let results: Vec<Mutex<Option<Result<R, ServerPanic>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = {
                        let mut state = states[i].lock();
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            handler(ServerId(i as u32), &mut state)
                        }))
                    };
                    *results[i].lock() = Some(r.map_err(|payload| ServerPanic {
                        server: ServerId(i as u32),
                        message: panic_message(&*payload),
                    }));
                });
            }
        });
        results
            .into_iter()
            .map(|m| m.into_inner().expect("every server produced a result"))
            .collect()
    }

    /// Run `f` against one server's state (e.g. the metadata owner of an
    /// object, or test inspection).
    pub fn with_server<R>(&self, id: ServerId, f: impl FnOnce(&mut S) -> R) -> R {
        let state = Arc::clone(&self.states.read()[id.raw() as usize]);
        let mut state = state.lock();
        f(&mut state)
    }

    /// Apply `f` to every server's state sequentially (e.g. cache resets
    /// between experiments).
    pub fn for_each_server(&self, mut f: impl FnMut(ServerId, &mut S)) {
        let states = self.snapshot();
        for (i, st) in states.iter().enumerate() {
            f(ServerId(i as u32), &mut st.lock());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct State {
        invocations: u64,
        total: u64,
    }

    #[test]
    fn broadcast_runs_every_server_once() {
        let pool = ServerPool::new(16, |_| State::default());
        let results = pool.broadcast(|id, st| {
            st.invocations += 1;
            id.raw() as u64
        });
        assert_eq!(results, (0..16).collect::<Vec<u64>>());
        pool.for_each_server(|_, st| assert_eq!(st.invocations, 1));
    }

    #[test]
    fn state_persists_across_broadcasts() {
        let pool = ServerPool::new(4, |_| State::default());
        for round in 0..5u64 {
            pool.broadcast(|_, st| {
                st.total += round;
            });
        }
        pool.for_each_server(|_, st| assert_eq!(st.total, 1 + 2 + 3 + 4));
    }

    #[test]
    fn with_server_targets_one_state() {
        let pool = ServerPool::new(3, |id| State { invocations: 0, total: id.raw() as u64 });
        let v = pool.with_server(ServerId(2), |st| st.total);
        assert_eq!(v, 2);
        pool.with_server(ServerId(0), |st| st.total = 99);
        assert_eq!(pool.with_server(ServerId(0), |st| st.total), 99);
        // others untouched
        assert_eq!(pool.with_server(ServerId(1), |st| st.total), 1);
    }

    #[test]
    fn init_sees_server_ids() {
        let pool = ServerPool::new(8, |id| id.raw() as u64);
        let results = pool.broadcast(|_, st| *st);
        assert_eq!(results, (0..8).collect::<Vec<u64>>());
    }

    #[test]
    fn single_worker_thread_still_completes() {
        let pool = ServerPool::new(32, |_| State::default()).with_worker_threads(1);
        let results = pool.broadcast(|id, _| id.raw());
        assert_eq!(results.len(), 32);
    }

    #[test]
    fn many_logical_servers_on_few_threads() {
        // Fig. 6 runs up to 512 PDC servers; the pool must host that many
        // logical servers regardless of the physical core count.
        let pool = ServerPool::new(512, |_| State::default()).with_worker_threads(2);
        let results = pool.broadcast(|id, st| {
            st.invocations += 1;
            id.raw()
        });
        assert_eq!(results.len(), 512);
        assert_eq!(results[511], 511);
    }

    #[test]
    fn add_server_grows_the_pool_with_stable_ids() {
        let pool = ServerPool::new(3, |id| State { invocations: 0, total: id.raw() as u64 });
        pool.with_server(ServerId(1), |st| st.total = 41);
        let id = pool.add_server(|id| State { invocations: 0, total: id.raw() as u64 });
        assert_eq!(id, ServerId(3));
        assert_eq!(pool.num_servers(), 4);
        // Pre-existing state survives the join; the new server is
        // addressable and participates in broadcasts.
        assert_eq!(pool.with_server(ServerId(1), |st| st.total), 41);
        let results = pool.broadcast(|id, st| {
            st.invocations += 1;
            id.raw()
        });
        assert_eq!(results, vec![0, 1, 2, 3]);
        assert_eq!(pool.with_server(ServerId(3), |st| st.invocations), 1);
    }

    #[test]
    fn try_broadcast_isolates_a_panicking_server() {
        let pool = ServerPool::new(8, |_| State::default());
        let results = pool.try_broadcast(|id, st| {
            if id.raw() == 3 {
                panic!("boom on server 3");
            }
            st.invocations += 1;
            id.raw()
        });
        assert_eq!(results.len(), 8);
        for (i, r) in results.iter().enumerate() {
            if i == 3 {
                let p = r.as_ref().unwrap_err();
                assert_eq!(p.server, ServerId(3));
                assert!(p.message.contains("boom"), "got: {}", p.message);
            } else {
                assert_eq!(*r.as_ref().unwrap(), i as u32);
            }
        }
        // Every healthy server ran exactly once; the panicked one is
        // still addressable afterwards.
        pool.for_each_server(|id, st| {
            assert_eq!(st.invocations, u64::from(id.raw() != 3));
        });
        assert_eq!(pool.with_server(ServerId(3), |st| st.invocations), 0);
    }

    #[test]
    fn try_broadcast_panic_on_few_threads_does_not_skip_servers() {
        // A panic must not kill the worker's dispatch loop: with 2 real
        // threads and 512 logical servers, servers queued after the
        // panicking one must still run.
        let pool = ServerPool::new(512, |_| State::default()).with_worker_threads(2);
        let results = pool.try_broadcast(|id, st| {
            if id.raw() % 97 == 13 {
                panic!("injected");
            }
            st.invocations += 1;
            id.raw()
        });
        assert_eq!(results.len(), 512);
        let (ok, err): (Vec<_>, Vec<_>) = results.iter().partition(|r| r.is_ok());
        assert_eq!(err.len(), (0..512).filter(|i| i % 97 == 13).count());
        assert_eq!(ok.len(), 512 - err.len());
        for r in results.iter().filter_map(|r| r.as_ref().err()) {
            assert_eq!(r.server.raw() % 97, 13);
        }
    }

    #[test]
    fn try_broadcast_all_panic_still_returns_every_slot() {
        let pool = ServerPool::new(16, |_| State::default()).with_worker_threads(3);
        let results = pool.try_broadcast(|_, _: &mut State| -> u32 { panic!("all down") });
        assert_eq!(results.len(), 16);
        assert!(results.iter().all(|r| r.is_err()));
        // The pool survives and can run a healthy broadcast afterwards.
        let again = pool.broadcast(|id, _| id.raw());
        assert_eq!(again.len(), 16);
    }

    #[test]
    fn try_broadcast_matches_broadcast_when_nothing_fails() {
        let pool = ServerPool::new(32, |_| State::default());
        let a = pool.broadcast(|id, _| id.raw() * 2);
        let b: Vec<u32> =
            pool.try_broadcast(|id, _| id.raw() * 2).into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(a, b);
    }
}
