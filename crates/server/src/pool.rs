//! The logical server pool.

use parking_lot::Mutex;
use pdc_types::ServerId;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A pool of `N` logical PDC servers with persistent per-server state,
/// dispatched over real worker threads.
pub struct ServerPool<S> {
    states: Vec<Mutex<S>>,
    worker_threads: usize,
}

impl<S: Send> ServerPool<S> {
    /// Create a pool of `num_servers` logical servers, initializing each
    /// server's state with `init`.
    pub fn new(num_servers: u32, init: impl Fn(ServerId) -> S) -> Self {
        let states = (0..num_servers).map(|i| Mutex::new(init(ServerId(i)))).collect();
        let worker_threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        Self { states, worker_threads }
    }

    /// Number of logical servers.
    pub fn num_servers(&self) -> u32 {
        self.states.len() as u32
    }

    /// Override the number of real worker threads (defaults to the host
    /// parallelism).
    pub fn with_worker_threads(mut self, n: usize) -> Self {
        self.worker_threads = n.max(1);
        self
    }

    /// Run `handler` once per logical server ("broadcast"), giving it the
    /// server's id and exclusive access to its persistent state. Results
    /// are returned indexed by server. Handlers run concurrently across
    /// worker threads; each logical server runs exactly once.
    pub fn broadcast<R, F>(&self, handler: F) -> Vec<R>
    where
        R: Send,
        F: Fn(ServerId, &mut S) -> R + Sync,
    {
        let n = self.states.len();
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = self.worker_threads.min(n).max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let mut state = self.states[i].lock();
                    let r = handler(ServerId(i as u32), &mut state);
                    *results[i].lock() = Some(r);
                });
            }
        });
        results
            .into_iter()
            .map(|m| m.into_inner().expect("every server produced a result"))
            .collect()
    }

    /// Run `f` against one server's state (e.g. the metadata owner of an
    /// object, or test inspection).
    pub fn with_server<R>(&self, id: ServerId, f: impl FnOnce(&mut S) -> R) -> R {
        let mut state = self.states[id.raw() as usize].lock();
        f(&mut state)
    }

    /// Apply `f` to every server's state sequentially (e.g. cache resets
    /// between experiments).
    pub fn for_each_server(&self, mut f: impl FnMut(ServerId, &mut S)) {
        for (i, st) in self.states.iter().enumerate() {
            f(ServerId(i as u32), &mut st.lock());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct State {
        invocations: u64,
        total: u64,
    }

    #[test]
    fn broadcast_runs_every_server_once() {
        let pool = ServerPool::new(16, |_| State::default());
        let results = pool.broadcast(|id, st| {
            st.invocations += 1;
            id.raw() as u64
        });
        assert_eq!(results, (0..16).collect::<Vec<u64>>());
        pool.for_each_server(|_, st| assert_eq!(st.invocations, 1));
    }

    #[test]
    fn state_persists_across_broadcasts() {
        let pool = ServerPool::new(4, |_| State::default());
        for round in 0..5u64 {
            pool.broadcast(|_, st| {
                st.total += round;
            });
        }
        pool.for_each_server(|_, st| assert_eq!(st.total, 1 + 2 + 3 + 4));
    }

    #[test]
    fn with_server_targets_one_state() {
        let pool = ServerPool::new(3, |id| State { invocations: 0, total: id.raw() as u64 });
        let v = pool.with_server(ServerId(2), |st| st.total);
        assert_eq!(v, 2);
        pool.with_server(ServerId(0), |st| st.total = 99);
        assert_eq!(pool.with_server(ServerId(0), |st| st.total), 99);
        // others untouched
        assert_eq!(pool.with_server(ServerId(1), |st| st.total), 1);
    }

    #[test]
    fn init_sees_server_ids() {
        let pool = ServerPool::new(8, |id| id.raw() as u64);
        let results = pool.broadcast(|_, st| *st);
        assert_eq!(results, (0..8).collect::<Vec<u64>>());
    }

    #[test]
    fn single_worker_thread_still_completes() {
        let pool = ServerPool::new(32, |_| State::default()).with_worker_threads(1);
        let results = pool.broadcast(|id, _| id.raw());
        assert_eq!(results.len(), 32);
    }

    #[test]
    fn many_logical_servers_on_few_threads() {
        // Fig. 6 runs up to 512 PDC servers; the pool must host that many
        // logical servers regardless of the physical core count.
        let pool = ServerPool::new(512, |_| State::default()).with_worker_threads(2);
        let results = pool.broadcast(|id, st| {
            st.invocations += 1;
            id.raw()
        });
        assert_eq!(results.len(), 512);
        assert_eq!(results[511], 511);
    }
}
