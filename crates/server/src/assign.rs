//! Load-balanced region assignment.
//!
//! "Upon the receipt of a query request, different regions of the queried
//! object are assigned to the servers in a load-balanced fashion."

use pdc_types::ServerId;

/// Round-robin assignment of `num_items` items across `num_servers`
/// servers: item `i` goes to server `i % num_servers`. Returns the item
/// indices per server.
pub fn round_robin(num_items: u32, num_servers: u32) -> Vec<Vec<u32>> {
    let n = num_servers.max(1) as usize;
    let mut out = vec![Vec::new(); n];
    for i in 0..num_items {
        out[(i as usize) % n].push(i);
    }
    out
}

/// Weight-balanced assignment (e.g. by region byte size, when regions are
/// unequal): greedy longest-processing-time scheduling — items are placed
/// heaviest-first onto the currently lightest server.
pub fn balanced_by_weight(weights: &[u64], num_servers: u32) -> Vec<Vec<u32>> {
    let n = num_servers.max(1) as usize;
    let mut order: Vec<u32> = (0..weights.len() as u32).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(weights[i as usize]));
    let mut out = vec![Vec::new(); n];
    let mut load = vec![0u64; n];
    for i in order {
        let lightest = (0..n).min_by_key(|&s| (load[s], s)).unwrap();
        load[lightest] += weights[i as usize];
        out[lightest].push(i);
    }
    // Deterministic per-server ordering.
    for items in &mut out {
        items.sort_unstable();
    }
    out
}

/// The server an item lands on under round-robin assignment.
pub fn round_robin_owner(item: u32, num_servers: u32) -> ServerId {
    ServerId(item % num_servers.max(1))
}

/// One item movement in a hot-spot rebalance plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Migration {
    /// The item (region index) to move.
    pub item: u32,
    /// The server currently holding it.
    pub from: ServerId,
    /// The server that should hold it after the rebalance.
    pub to: ServerId,
}

/// Detect a skewed per-server weight distribution and emit a migration
/// plan relieving the hot spots.
///
/// `assignment[s]` lists the items currently on server `s`; `weights[i]`
/// is item `i`'s weight (region bytes). A server is *hot* when its load
/// exceeds the promised bound
///
/// ```text
/// bound = max(threshold × mean, mean + w_max)
/// ```
///
/// where `mean` is the average per-server load and `w_max` the heaviest
/// single item. The returned plan, applied in order, guarantees:
///
/// * every server's final load is ≤ `bound` (the `mean + w_max` term
///   makes that always achievable — one indivisible huge item may pin a
///   server above `threshold × mean` no matter where it sits);
/// * no intermediate or final load ever exceeds the original maximum
///   (each move sends an item to a server that stays strictly below the
///   donor's pre-move load);
/// * the plan is a pure function of its inputs — same inputs, same plan.
///
/// Moves are greedy: the heaviest item on the hottest server that still
/// fits on the coolest server, so the plan stays small (an already
/// balanced assignment yields an empty plan).
pub fn rebalance_hotspots(
    weights: &[u64],
    assignment: &[Vec<u32>],
    threshold: f64,
) -> Vec<Migration> {
    let n = assignment.len();
    if n <= 1 {
        return Vec::new();
    }
    let mut held: Vec<Vec<u32>> = assignment.to_vec();
    let mut load: Vec<u64> = held
        .iter()
        .map(|items| items.iter().map(|&i| weights[i as usize]).sum())
        .collect();
    let total: u64 = load.iter().sum();
    let mean = total as f64 / n as f64;
    let w_max = held.iter().flatten().map(|&i| weights[i as usize]).max().unwrap_or(0);
    let bound = (threshold.max(1.0) * mean).max(mean + w_max as f64);
    let mut plan = Vec::new();
    loop {
        // Hottest donor (smallest id on ties), coolest receiver.
        let donor = (0..n).max_by_key(|&s| (load[s], std::cmp::Reverse(s))).unwrap();
        if (load[donor] as f64) <= bound {
            break;
        }
        let recv = (0..n).min_by_key(|&s| (load[s], s)).unwrap();
        // Heaviest item that keeps the receiver strictly below the
        // donor's current load — the move can never create a new maximum,
        // and the sum of squared loads strictly decreases, so the loop
        // terminates.
        let pick = held[donor]
            .iter()
            .copied()
            .filter(|&i| {
                let w = weights[i as usize];
                w > 0 && load[recv] + w < load[donor]
            })
            .max_by_key(|&i| (weights[i as usize], std::cmp::Reverse(i)));
        let Some(item) = pick else { break };
        let w = weights[item as usize];
        held[donor].retain(|&i| i != item);
        held[recv].push(item);
        load[donor] -= w;
        load[recv] += w;
        plan.push(Migration {
            item,
            from: ServerId(donor as u32),
            to: ServerId(recv as u32),
        });
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_covers_all_items_evenly() {
        let a = round_robin(10, 4);
        assert_eq!(a.len(), 4);
        let total: usize = a.iter().map(|v| v.len()).sum();
        assert_eq!(total, 10);
        assert_eq!(a[0], vec![0, 4, 8]);
        assert_eq!(a[1], vec![1, 5, 9]);
        assert_eq!(a[2], vec![2, 6]);
        assert_eq!(a[3], vec![3, 7]);
        // sizes differ by at most one
        let (min, max) = (a.iter().map(|v| v.len()).min().unwrap(), a.iter().map(|v| v.len()).max().unwrap());
        assert!(max - min <= 1);
    }

    #[test]
    fn round_robin_more_servers_than_items() {
        let a = round_robin(3, 8);
        assert_eq!(a.iter().filter(|v| !v.is_empty()).count(), 3);
    }

    #[test]
    fn round_robin_zero_servers_clamped() {
        let a = round_robin(5, 0);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].len(), 5);
    }

    #[test]
    fn owner_matches_assignment() {
        let a = round_robin(20, 6);
        for (s, items) in a.iter().enumerate() {
            for &i in items {
                assert_eq!(round_robin_owner(i, 6).raw() as usize, s);
            }
        }
    }

    #[test]
    fn balanced_by_weight_evens_out_loads() {
        // One huge item and many small ones: greedy LPT keeps the spread
        // far below "huge on the same server as everything else".
        let mut weights = vec![100u64];
        weights.extend(std::iter::repeat_n(10, 30));
        let a = balanced_by_weight(&weights, 4);
        let loads: Vec<u64> = a
            .iter()
            .map(|items| items.iter().map(|&i| weights[i as usize]).sum())
            .collect();
        let total: u64 = loads.iter().sum();
        assert_eq!(total, 400);
        let max = *loads.iter().max().unwrap();
        let min = *loads.iter().min().unwrap();
        assert!(max - min <= 10, "loads {loads:?} not balanced");
    }

    #[test]
    fn balanced_by_weight_assigns_every_item_once() {
        let weights: Vec<u64> = (1..=25).collect();
        let a = balanced_by_weight(&weights, 5);
        let mut seen = [false; 25];
        for items in &a {
            for &i in items {
                assert!(!seen[i as usize]);
                seen[i as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn balanced_by_weight_empty_input() {
        let a = balanced_by_weight(&[], 4);
        assert!(a.iter().all(|v| v.is_empty()));
    }

    fn loads(weights: &[u64], held: &[Vec<u32>]) -> Vec<u64> {
        held.iter().map(|items| items.iter().map(|&i| weights[i as usize]).sum()).collect()
    }

    fn apply(plan: &[Migration], held: &mut [Vec<u32>]) {
        for m in plan {
            let from = &mut held[m.from.raw() as usize];
            let at = from.iter().position(|&i| i == m.item).expect("migrated item on donor");
            from.remove(at);
            held[m.to.raw() as usize].push(m.item);
        }
    }

    #[test]
    fn replication_rebalance_relieves_a_hot_spot() {
        // Server 0 holds everything; three idle servers.
        let weights = vec![10u64; 12];
        let mut held = vec![(0..12).collect::<Vec<u32>>(), vec![], vec![], vec![]];
        let plan = rebalance_hotspots(&weights, &held, 1.25);
        assert!(!plan.is_empty());
        apply(&plan, &mut held);
        let after = loads(&weights, &held);
        let mean = 120.0 / 4.0;
        let bound = (1.25f64 * mean).max(mean + 10.0);
        assert!(after.iter().all(|&l| l as f64 <= bound), "loads {after:?} exceed bound {bound}");
    }

    #[test]
    fn replication_rebalance_balanced_input_is_a_no_op() {
        let weights: Vec<u64> = (1..=24).collect();
        let held = balanced_by_weight(&weights, 4);
        let plan = rebalance_hotspots(&weights, &held, 1.5);
        assert!(plan.is_empty(), "balanced assignment must not move: {plan:?}");
    }

    #[test]
    fn replication_rebalance_indivisible_item_uses_additive_bound() {
        // One item heavier than threshold×mean on its own: the plan can't
        // split it, so the promise falls back to mean + w_max — and the
        // small items still leave the hot server.
        let mut weights = vec![1000u64];
        weights.extend(std::iter::repeat_n(10u64, 20));
        let mut held = vec![(0..21).collect::<Vec<u32>>(), vec![], vec![], vec![]];
        let plan = rebalance_hotspots(&weights, &held, 1.1);
        apply(&plan, &mut held);
        let after = loads(&weights, &held);
        let mean = 1200.0 / 4.0;
        let bound = (1.1f64 * mean).max(mean + 1000.0);
        assert!(after.iter().all(|&l| l as f64 <= bound));
        // The huge item stays somewhere whole.
        assert_eq!(after.iter().filter(|&&l| l >= 1000).count(), 1);
    }

    proptest::proptest! {
        /// The plan never exceeds the bound it promises, never raises the
        /// maximum load, and keeps every item assigned exactly once.
        #[test]
        fn replication_rebalance_honours_promised_bound(
            weights in proptest::collection::vec(0u64..5000, 1..80),
            num_servers in 1u32..12,
            threshold in 1.0f64..3.0,
            seed in 0u64..1000,
        ) {
            // A deliberately skewed starting assignment: seeded modular
            // placement, heavy bias toward low server ids.
            let n = num_servers as usize;
            let mut held = vec![Vec::new(); n];
            for (i, _) in weights.iter().enumerate() {
                let s = ((i as u64).wrapping_mul(seed.wrapping_add(7)) % (n as u64 * 2)) as usize;
                held[s.min(n - 1)].push(i as u32);
            }
            let before = loads(&weights, &held);
            let max_before = before.iter().copied().max().unwrap();
            let total: u64 = before.iter().sum();
            let mean = total as f64 / n as f64;
            let w_max = *weights.iter().max().unwrap();
            let bound = (threshold * mean).max(mean + w_max as f64);

            let plan = rebalance_hotspots(&weights, &held, threshold);
            let mut after_held = held.clone();
            apply(&plan, &mut after_held);
            let after = loads(&weights, &after_held);

            // Promised bound holds, and the max never grows.
            proptest::prop_assert!(after.iter().all(|&l| l as f64 <= bound),
                "loads {:?} exceed bound {}", after, bound);
            proptest::prop_assert!(after.iter().copied().max().unwrap() <= max_before);
            // Conservation: every item exactly once.
            let mut all: Vec<u32> = after_held.iter().flatten().copied().collect();
            all.sort_unstable();
            proptest::prop_assert_eq!(all, (0..weights.len() as u32).collect::<Vec<_>>());
        }

        /// Same inputs ⇒ same plan (pure function, deterministic).
        #[test]
        fn replication_rebalance_is_deterministic(
            weights in proptest::collection::vec(0u64..5000, 1..60),
            num_servers in 1u32..10,
        ) {
            let held = round_robin(weights.len() as u32, num_servers)
                .into_iter()
                .map(|mut v| { v.reverse(); v })
                .collect::<Vec<_>>();
            let a = rebalance_hotspots(&weights, &held, 1.3);
            let b = rebalance_hotspots(&weights, &held, 1.3);
            proptest::prop_assert_eq!(a, b);
        }
    }
}
