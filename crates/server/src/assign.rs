//! Load-balanced region assignment.
//!
//! "Upon the receipt of a query request, different regions of the queried
//! object are assigned to the servers in a load-balanced fashion."

use pdc_types::ServerId;

/// Round-robin assignment of `num_items` items across `num_servers`
/// servers: item `i` goes to server `i % num_servers`. Returns the item
/// indices per server.
pub fn round_robin(num_items: u32, num_servers: u32) -> Vec<Vec<u32>> {
    let n = num_servers.max(1) as usize;
    let mut out = vec![Vec::new(); n];
    for i in 0..num_items {
        out[(i as usize) % n].push(i);
    }
    out
}

/// Weight-balanced assignment (e.g. by region byte size, when regions are
/// unequal): greedy longest-processing-time scheduling — items are placed
/// heaviest-first onto the currently lightest server.
pub fn balanced_by_weight(weights: &[u64], num_servers: u32) -> Vec<Vec<u32>> {
    let n = num_servers.max(1) as usize;
    let mut order: Vec<u32> = (0..weights.len() as u32).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(weights[i as usize]));
    let mut out = vec![Vec::new(); n];
    let mut load = vec![0u64; n];
    for i in order {
        let lightest = (0..n).min_by_key(|&s| (load[s], s)).unwrap();
        load[lightest] += weights[i as usize];
        out[lightest].push(i);
    }
    // Deterministic per-server ordering.
    for items in &mut out {
        items.sort_unstable();
    }
    out
}

/// The server an item lands on under round-robin assignment.
pub fn round_robin_owner(item: u32, num_servers: u32) -> ServerId {
    ServerId(item % num_servers.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_covers_all_items_evenly() {
        let a = round_robin(10, 4);
        assert_eq!(a.len(), 4);
        let total: usize = a.iter().map(|v| v.len()).sum();
        assert_eq!(total, 10);
        assert_eq!(a[0], vec![0, 4, 8]);
        assert_eq!(a[1], vec![1, 5, 9]);
        assert_eq!(a[2], vec![2, 6]);
        assert_eq!(a[3], vec![3, 7]);
        // sizes differ by at most one
        let (min, max) = (a.iter().map(|v| v.len()).min().unwrap(), a.iter().map(|v| v.len()).max().unwrap());
        assert!(max - min <= 1);
    }

    #[test]
    fn round_robin_more_servers_than_items() {
        let a = round_robin(3, 8);
        assert_eq!(a.iter().filter(|v| !v.is_empty()).count(), 3);
    }

    #[test]
    fn round_robin_zero_servers_clamped() {
        let a = round_robin(5, 0);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].len(), 5);
    }

    #[test]
    fn owner_matches_assignment() {
        let a = round_robin(20, 6);
        for (s, items) in a.iter().enumerate() {
            for &i in items {
                assert_eq!(round_robin_owner(i, 6).raw() as usize, s);
            }
        }
    }

    #[test]
    fn balanced_by_weight_evens_out_loads() {
        // One huge item and many small ones: greedy LPT keeps the spread
        // far below "huge on the same server as everything else".
        let mut weights = vec![100u64];
        weights.extend(std::iter::repeat_n(10, 30));
        let a = balanced_by_weight(&weights, 4);
        let loads: Vec<u64> = a
            .iter()
            .map(|items| items.iter().map(|&i| weights[i as usize]).sum())
            .collect();
        let total: u64 = loads.iter().sum();
        assert_eq!(total, 400);
        let max = *loads.iter().max().unwrap();
        let min = *loads.iter().min().unwrap();
        assert!(max - min <= 10, "loads {loads:?} not balanced");
    }

    #[test]
    fn balanced_by_weight_assigns_every_item_once() {
        let weights: Vec<u64> = (1..=25).collect();
        let a = balanced_by_weight(&weights, 5);
        let mut seen = [false; 25];
        for items in &a {
            for &i in items {
                assert!(!seen[i as usize]);
                seen[i as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn balanced_by_weight_empty_input() {
        let a = balanced_by_weight(&[], 4);
        assert!(a.iter().all(|v| v.is_empty()));
    }
}
