//! Deterministic fault injection for the logical server pool.
//!
//! A [`FaultPlan`] describes, per logical server, what goes wrong and
//! when — crash on the k-th region access, a fixed slowdown factor, or a
//! number of transient evaluation errors. Plans are either constructed
//! explicitly (tests) or derived from a seed (`--fault-seed`), so every
//! failure scenario replays exactly: the same seed produces the same
//! crashes at the same points of the same simulated timeline.
//!
//! The plan is *installed* into each server's state as a [`FaultProbe`],
//! which the storage-access layer consults on every region access. Faults
//! therefore surface through the same [`PdcResult`] plumbing as genuine
//! storage errors, and the recovery machinery upstream cannot tell them
//! apart — which is the point.

use pdc_types::{PdcError, PdcResult};
use std::collections::BTreeMap;

/// What goes wrong on one logical server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerFaultSpec {
    /// Crash permanently on the k-th region access (0 = the very first).
    /// A crashed server fails every subsequent access until its state is
    /// reset.
    pub crash_at_access: Option<u64>,
    /// Multiply this server's per-round evaluation time by this factor
    /// (1.0 = healthy). Slow servers past the client timeout get their
    /// work reassigned.
    pub slowdown: f64,
    /// Fail the first `transient_errors` accesses with a retryable error,
    /// then behave normally.
    pub transient_errors: u32,
    /// The first `corrupt_reads` storage reads observe a transient
    /// checksum failure on the transferred bytes: the server re-reads the
    /// region (charged to the `integrity` cost lane) and proceeds — this
    /// never changes query results, only their cost.
    pub corrupt_reads: u32,
}

impl Default for ServerFaultSpec {
    fn default() -> Self {
        Self { crash_at_access: None, slowdown: 1.0, transient_errors: 0, corrupt_reads: 0 }
    }
}

impl ServerFaultSpec {
    fn is_healthy(&self) -> bool {
        self.crash_at_access.is_none()
            && self.slowdown == 1.0
            && self.transient_errors == 0
            && self.corrupt_reads == 0
    }
}

/// Deterministic at-rest corruption to inject into the object store and
/// the metadata-resident auxiliary structures before queries run.
/// Victims are drawn per seed with a partial Fisher-Yates shuffle, so the
/// same seed always corrupts the same set (regression-tested).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorruptionSpec {
    /// Fraction of each object's data regions to bit-flip (0.0–1.0).
    pub data_fraction: f64,
    /// Fraction of auxiliary structures (index regions, region
    /// histograms, sorted replicas) to corrupt (0.0–1.0).
    pub aux_fraction: f64,
    /// Seed for victim selection and flip sites.
    pub seed: u64,
}

impl CorruptionSpec {
    /// Corrupt the given fractions of data regions / aux structures.
    pub fn new(data_fraction: f64, aux_fraction: f64, seed: u64) -> Self {
        Self {
            data_fraction: data_fraction.clamp(0.0, 1.0),
            aux_fraction: aux_fraction.clamp(0.0, 1.0),
            seed,
        }
    }

    /// Deterministically pick `ceil(n·fraction)` victims out of `0..n`
    /// (sorted). `salt` separates draws for different structure kinds so
    /// data and aux victims are independent.
    pub fn victims(&self, n: usize, fraction: f64, salt: u64) -> Vec<usize> {
        let fraction = fraction.clamp(0.0, 1.0);
        if n == 0 || fraction <= 0.0 {
            return Vec::new();
        }
        let count = ((n as f64 * fraction).ceil() as usize).min(n);
        let mut rng = SplitMix::new(self.seed ^ salt);
        let mut pool: Vec<usize> = (0..n).collect();
        // Partial Fisher-Yates: the first `count` entries are the victims.
        for i in 0..count {
            let j = i + (rng.next() % (n as u64 - i as u64)) as usize;
            pool.swap(i, j);
        }
        let mut out = pool[..count].to_vec();
        out.sort_unstable();
        out
    }

    /// Data-region victims out of `0..n`.
    pub fn data_victims(&self, n: usize, salt: u64) -> Vec<usize> {
        self.victims(n, self.data_fraction, salt ^ 0xDA7A_0000_0000_0001)
    }

    /// Auxiliary-structure victims out of `0..n`.
    pub fn aux_victims(&self, n: usize, salt: u64) -> Vec<usize> {
        self.victims(n, self.aux_fraction, salt ^ 0xA0C5_0000_0000_0002)
    }
}

/// A deterministic, per-server fault schedule (plus optional at-rest
/// corruption applied to the store before queries run).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    specs: BTreeMap<u32, ServerFaultSpec>,
    corruption: Option<CorruptionSpec>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set one server's fault spec (builder style).
    pub fn with_spec(mut self, server: u32, spec: ServerFaultSpec) -> Self {
        self.specs.insert(server, spec);
        self
    }

    /// Crash the given servers on their first region access.
    pub fn kill(servers: &[u32]) -> Self {
        let mut plan = Self::new();
        for &s in servers {
            plan.specs.insert(
                s,
                ServerFaultSpec { crash_at_access: Some(0), ..Default::default() },
            );
        }
        plan
    }

    /// Crash `count` of `num_servers` servers, chosen deterministically
    /// from `seed`. Victims crash on their very first region access, so
    /// "kill K servers" reliably means K servers are down regardless of
    /// how few accesses the evaluation strategy makes; use
    /// [`FaultPlan::seeded`] or an explicit [`ServerFaultSpec`] for
    /// mid-evaluation crash points.
    pub fn kill_count(count: u32, num_servers: u32, seed: u64) -> Self {
        let count = count.min(num_servers);
        let mut rng = SplitMix::new(seed);
        let mut victims: Vec<u32> = (0..num_servers).collect();
        // Partial Fisher-Yates: the first `count` entries are the victims.
        for i in 0..count as usize {
            let j = i + (rng.next() % (num_servers as u64 - i as u64)) as usize;
            victims.swap(i, j);
        }
        let mut plan = Self::new();
        for &s in &victims[..count as usize] {
            plan.specs
                .insert(s, ServerFaultSpec { crash_at_access: Some(0), ..Default::default() });
        }
        plan
    }

    /// A seed-derived mixed plan over `num_servers` servers: roughly a
    /// quarter of the servers get a fault — a crash, a slowdown, a few
    /// transient errors, or a few transient corrupt reads — but at least
    /// one server always stays healthy.
    pub fn seeded(seed: u64, num_servers: u32) -> Self {
        let mut rng = SplitMix::new(seed);
        let mut plan = Self::new();
        let mut crashes = 0;
        for s in 0..num_servers {
            if !rng.next().is_multiple_of(4) {
                continue;
            }
            let spec = match rng.next() % 4 {
                // Never crash the last healthy-by-construction candidate:
                // leaving at least one server alive keeps every seeded
                // plan recoverable.
                0 if crashes + 1 < num_servers => {
                    crashes += 1;
                    ServerFaultSpec { crash_at_access: Some(rng.next() % 16), ..Default::default() }
                }
                1 => ServerFaultSpec {
                    slowdown: 1.5 + (rng.next() % 100) as f64 / 10.0,
                    ..Default::default()
                },
                2 => ServerFaultSpec {
                    transient_errors: 1 + (rng.next() % 3) as u32,
                    ..Default::default()
                },
                _ => ServerFaultSpec {
                    corrupt_reads: 1 + (rng.next() % 2) as u32,
                    ..Default::default()
                },
            };
            plan.specs.insert(s, spec);
        }
        plan
    }

    /// [`FaultPlan::seeded`] plus an at-rest [`CorruptionSpec`] derived
    /// from the same seed, so one `--fault-seed` value replays the whole
    /// failure *and* corruption scenario.
    pub fn seeded_with_corruption(
        seed: u64,
        num_servers: u32,
        data_fraction: f64,
        aux_fraction: f64,
    ) -> Self {
        Self::seeded(seed, num_servers)
            .with_corruption(CorruptionSpec::new(data_fraction, aux_fraction, seed))
    }

    /// Attach an at-rest corruption spec (builder style).
    pub fn with_corruption(mut self, spec: CorruptionSpec) -> Self {
        self.corruption = Some(spec);
        self
    }

    /// The plan's at-rest corruption spec, if any.
    pub fn corruption(&self) -> Option<&CorruptionSpec> {
        self.corruption.as_ref()
    }

    /// This plan with the corruption spec stripped (per-server faults
    /// only).
    pub fn clone_without_corruption(&self) -> Self {
        Self { specs: self.specs.clone(), corruption: None }
    }

    /// The probe to install on `server` (`None` if the server is healthy
    /// under this plan).
    pub fn probe_for(&self, server: u32) -> Option<FaultProbe> {
        let spec = self.specs.get(&server).copied()?;
        if spec.is_healthy() {
            return None;
        }
        Some(FaultProbe {
            server,
            spec,
            accesses: 0,
            transient_left: spec.transient_errors,
            corrupt_left: spec.corrupt_reads,
            crashed: false,
        })
    }

    /// Servers this plan crashes outright (not slowdowns/transients).
    pub fn crashed_servers(&self) -> Vec<u32> {
        self.specs
            .iter()
            .filter(|(_, s)| s.crash_at_access.is_some())
            .map(|(&id, _)| id)
            .collect()
    }

    /// Whether the plan contains no faults (and no corruption) at all.
    pub fn is_empty(&self) -> bool {
        self.specs.values().all(|s| s.is_healthy()) && self.corruption.is_none()
    }
}

/// The runtime view of one server's fault spec: counts region accesses
/// and decides when the scheduled fault fires.
#[derive(Debug, Clone)]
pub struct FaultProbe {
    server: u32,
    spec: ServerFaultSpec,
    accesses: u64,
    transient_left: u32,
    corrupt_left: u32,
    crashed: bool,
}

impl FaultProbe {
    /// Called by the storage layer before every region access. Errors
    /// when the scheduled fault fires (and forever after a crash).
    pub fn on_access(&mut self) -> PdcResult<()> {
        if self.crashed {
            return Err(PdcError::ServerFailed {
                server: self.server,
                reason: "server crashed".into(),
            });
        }
        let k = self.accesses;
        self.accesses += 1;
        if let Some(at) = self.spec.crash_at_access {
            if k >= at {
                self.crashed = true;
                return Err(PdcError::ServerFailed {
                    server: self.server,
                    reason: format!("injected crash at region access {k}"),
                });
            }
        }
        if self.transient_left > 0 {
            self.transient_left -= 1;
            return Err(PdcError::ServerFailed {
                server: self.server,
                reason: format!("injected transient error at region access {k}"),
            });
        }
        Ok(())
    }

    /// Consumed by the storage layer on each storage read: `true` means
    /// this read observed a transient checksum failure and must be
    /// re-read (charged to the `integrity` lane). Unlike
    /// [`FaultProbe::on_access`] failures this is not an error — the
    /// re-read succeeds, so results never change.
    pub fn take_corrupt_read(&mut self) -> bool {
        if self.corrupt_left > 0 {
            self.corrupt_left -= 1;
            true
        } else {
            false
        }
    }

    /// Whether the crash fault has fired (the server is dead until reset).
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// This server's evaluation-time multiplier.
    pub fn slowdown(&self) -> f64 {
        self.spec.slowdown
    }
}

/// Small deterministic generator for plan construction (SplitMix64).
struct SplitMix {
    state: u64,
}

impl SplitMix {
    fn new(seed: u64) -> Self {
        Self { state: seed ^ 0xD1B5_4A32_D192_ED03 }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_crashes_on_first_access() {
        let plan = FaultPlan::kill(&[1]);
        assert!(plan.probe_for(0).is_none());
        let mut p = plan.probe_for(1).unwrap();
        assert!(!p.is_crashed());
        assert!(p.on_access().is_err());
        assert!(p.is_crashed());
        // Dead forever.
        assert!(p.on_access().is_err());
    }

    #[test]
    fn crash_at_k_allows_earlier_accesses() {
        let plan = FaultPlan::new().with_spec(
            0,
            ServerFaultSpec { crash_at_access: Some(3), ..Default::default() },
        );
        let mut p = plan.probe_for(0).unwrap();
        for _ in 0..3 {
            assert!(p.on_access().is_ok());
        }
        assert!(p.on_access().is_err());
        assert!(p.is_crashed());
    }

    #[test]
    fn transient_errors_then_recovery() {
        let plan = FaultPlan::new()
            .with_spec(2, ServerFaultSpec { transient_errors: 2, ..Default::default() });
        let mut p = plan.probe_for(2).unwrap();
        assert!(p.on_access().is_err());
        assert!(p.on_access().is_err());
        assert!(!p.is_crashed(), "transient errors must not kill the server");
        assert!(p.on_access().is_ok());
    }

    #[test]
    fn kill_count_is_deterministic_and_bounded() {
        let a = FaultPlan::kill_count(3, 8, 42);
        let b = FaultPlan::kill_count(3, 8, 42);
        assert_eq!(a, b);
        assert_eq!(a.crashed_servers().len(), 3);
        let c = FaultPlan::kill_count(3, 8, 43);
        assert!(a != c || a.crashed_servers() == c.crashed_servers());
        // Never more victims than servers.
        assert_eq!(FaultPlan::kill_count(99, 4, 1).crashed_servers().len(), 4);
    }

    #[test]
    fn seeded_plans_leave_a_survivor() {
        for seed in 0..200 {
            for n in 1..10 {
                let plan = FaultPlan::seeded(seed, n);
                assert!(
                    (plan.crashed_servers().len() as u32) < n.max(1),
                    "seed {seed} n {n} crashed everything"
                );
            }
        }
    }

    #[test]
    fn healthy_specs_produce_no_probe() {
        let plan = FaultPlan::new().with_spec(0, ServerFaultSpec::default());
        assert!(plan.probe_for(0).is_none());
        assert!(plan.is_empty());
    }

    #[test]
    fn corrupt_reads_drain_then_clean() {
        let plan = FaultPlan::new()
            .with_spec(1, ServerFaultSpec { corrupt_reads: 2, ..Default::default() });
        assert!(!plan.is_empty());
        let mut p = plan.probe_for(1).unwrap();
        // Corrupt reads are not access errors.
        assert!(p.on_access().is_ok());
        assert!(p.take_corrupt_read());
        assert!(p.take_corrupt_read());
        assert!(!p.take_corrupt_read(), "budget must drain");
        assert!(!p.is_crashed());
    }

    #[test]
    fn corruption_spec_victims_are_seed_deterministic() {
        // Satellite regression: same seed ⇒ same corrupted set.
        let spec = CorruptionSpec::new(0.25, 0.5, 42);
        assert_eq!(spec.data_victims(40, 7), spec.data_victims(40, 7));
        assert_eq!(spec.aux_victims(40, 7), spec.aux_victims(40, 7));
        let other = CorruptionSpec::new(0.25, 0.5, 43);
        assert_ne!(spec.data_victims(40, 7), other.data_victims(40, 7));
        // Different salts draw independently.
        assert_ne!(spec.data_victims(40, 7), spec.data_victims(40, 8));
        // ceil() guarantees at least one victim for any positive fraction.
        assert_eq!(spec.victims(3, 0.05, 0).len(), 1);
        assert_eq!(spec.victims(40, 0.25, 0).len(), 10);
        assert!(spec.victims(0, 0.5, 0).is_empty());
        assert!(spec.victims(10, 0.0, 0).is_empty());
        // Victims are sorted, unique, in range.
        let v = spec.victims(100, 0.2, 3);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
        assert!(v.iter().all(|&i| i < 100));
    }

    #[test]
    fn seeded_with_corruption_replays() {
        let a = FaultPlan::seeded_with_corruption(9, 8, 0.1, 0.2);
        let b = FaultPlan::seeded_with_corruption(9, 8, 0.1, 0.2);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let spec = a.corruption().unwrap();
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.data_fraction, 0.1);
        // The per-server arm of `seeded` is unchanged by the corruption
        // attachment.
        assert_eq!(FaultPlan::seeded(9, 8), a.clone_without_corruption());
    }
}
