//! # pdc-server
//!
//! The PDC client/server runtime (paper §II, §III-C), generically typed so
//! the query engine layers on top without a dependency cycle.
//!
//! The paper runs one PDC server per compute node; the client library
//! "serializes the query conditions and broadcasts them to all available
//! servers", regions are "assigned to the servers in a load-balanced
//! fashion", and "after the metadata distribution process, the PDC servers
//! do not need to communicate with each other".
//!
//! Here a [`ServerPool`] hosts N **logical servers**, each owning
//! persistent per-server state (its region cache, simulated clock and
//! counters — state survives across queries, which is what produces the
//! paper's caching effects over a query series). Logical servers are
//! multiplexed over real worker threads; because all *times* come from the
//! deterministic cost model, results are identical regardless of the host
//! machine's core count.

pub mod assign;
pub mod fault;
pub mod placement;
pub mod pool;

pub use assign::{balanced_by_weight, rebalance_hotspots, round_robin, Migration};
pub use fault::{CorruptionSpec, FaultPlan, FaultProbe, ServerFaultSpec};
pub use placement::{MigrationPlan, Placement, SlotChange};
pub use pool::{ServerPanic, ServerPool};
