//! Deterministic samplers for the workload generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded RNG (all workloads are reproducible given their seed).
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Sample an exponential with the given `rate` (mean `1/rate`).
pub fn exponential(rng: &mut StdRng, rate: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate
}

/// Sample an exponential with `rate`, truncated to `[0, limit)` via
/// inverse-CDF (exact, no rejection loop).
pub fn truncated_exponential(rng: &mut StdRng, rate: f64, limit: f64) -> f64 {
    let cap = 1.0 - (-rate * limit).exp();
    let u: f64 = rng.gen_range(0.0..1.0) * cap;
    -(1.0 - u).ln() / rate
}

/// A standard normal via Box–Muller.
pub fn normal(rng: &mut StdRng, mean: f64, std: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    mean + std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A triangle wave in `[0, 1]` with unit period: 0 → 1 → 0 over one
/// period. Used to cycle positions through their domain smoothly (so
/// per-region min/max stay informative).
pub fn triangle(phase: f64) -> f64 {
    let t = phase.rem_euclid(1.0);
    if t < 0.5 {
        2.0 * t
    } else {
        2.0 * (1.0 - t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = rng(42);
        let mut b = rng(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn exponential_mean_roughly_inverse_rate() {
        let mut r = rng(7);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut r, 4.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn truncated_exponential_respects_limit() {
        let mut r = rng(9);
        for _ in 0..50_000 {
            let v = truncated_exponential(&mut r, 1.47, 2.0);
            assert!((0.0..2.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn truncated_exponential_matches_conditional_distribution() {
        // P(X < 1 | X < 2) for rate 1.47.
        let mut r = rng(11);
        let n = 200_000;
        let below: usize =
            (0..n).filter(|_| truncated_exponential(&mut r, 1.47, 2.0) < 1.0).count();
        let expect = (1.0 - (-1.47f64).exp()) / (1.0 - (-2.0 * 1.47f64).exp());
        let got = below as f64 / n as f64;
        assert!((got - expect).abs() < 0.01, "got {got}, expect {expect}");
    }

    #[test]
    fn normal_moments() {
        let mut r = rng(13);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r, 2.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var - 9.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn triangle_shape() {
        assert_eq!(triangle(0.0), 0.0);
        assert_eq!(triangle(0.25), 0.5);
        assert_eq!(triangle(0.5), 1.0);
        assert_eq!(triangle(0.75), 0.5);
        assert!((triangle(1.0) - 0.0).abs() < 1e-12);
        assert_eq!(triangle(1.25), 0.5); // periodic
        assert_eq!(triangle(-0.25), 0.5); // negative phases fold
    }
}
