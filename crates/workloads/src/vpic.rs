//! The calibrated VPIC-like particle generator.
//!
//! Calibration (see DESIGN.md): energy is a two-part distribution —
//! a thermal bulk on `[0, 2)` (truncated exponential, rate ≈ 1.47) and an
//! energetic tail above 2.0 with mass ≈ 5.29 % decaying at rate ≈ 5.78.
//! These constants solve the paper's two anchor selectivities:
//!
//! * `P(2.1 < E < 2.2)` = 0.0529 · (e^(−0.578) − e^(−1.156)) ≈ **1.30 %**
//!   (paper: 1.3025 %),
//! * `P(3.5 < E < 3.6)` ≈ **4·10⁻⁶** (paper: 0.0004 %).
//!
//! Particles are generated in cell order: `x` ramps across the domain over
//! the whole array, `y` and `z` cycle (triangle waves) with decreasing
//! period — like a row-major sweep of the simulation grid. Tail particles
//! concentrate (99.8 %) in a "reconnection region" at high `x`/`y` — and,
//! because particles are stored in cell order, in *index* space too — so
//! the multi-object query boxes, which sit outside it, keep their
//! sub-0.01 % joint selectivities, and most array regions stay tail-free
//! (prunable).

use crate::dist;
use pdc_odms::{ImportOptions, ImportReport, Odms};
use pdc_types::{ContainerId, ObjectId, PdcResult, TypedVec};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Generator parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct VpicConfig {
    /// Number of particles (the paper has 125 billion; default scale is
    /// set by the harness, typically a few million).
    pub particles: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for VpicConfig {
    fn default() -> Self {
        Self { particles: 1 << 20, seed: 0x5EED_201C }
    }
}

/// Domain extents (match the paper's query constants: `100 < x < 200`,
/// `−90 < y < 0`, `0 < z < 66`).
pub const X_MAX: f64 = 332.0;
pub const Y_MIN: f64 = -125.0;
pub const Y_MAX: f64 = 125.0;
pub const Z_MAX: f64 = 132.0;

/// Bulk (thermal) energy decay rate: solves `P(E > 2) = 0.0529` within
/// the truncation.
pub const BULK_RATE: f64 = 1.47;
/// Tail decay rate: solves the 1.30 % → 0.0004 % span over `ΔE = 1.4`.
pub const TAIL_RATE: f64 = 5.78;
/// Fraction of particles in the energetic tail (E ≥ 2.0).
pub const TAIL_MASS: f64 = 0.0529;
/// Fraction of tail particles inside the reconnection region. Stray
/// energetic particles outside it are rare enough that most regions keep
/// prunable (tail-free) min/max ranges — as in the real VPIC data.
pub const TAIL_CONCENTRATION: f64 = 0.998;

/// Index-block size for tail energy draws (particles accelerated in the
/// same burst share a narrow energy band).
pub const TAIL_BLOCK: usize = 64;

/// Fraction of all particles inside the reconnection ("hot") region:
/// `P(x > 0.62·X_MAX) · P(y > 0.25·Y_MAX)` ≈ 0.38 · 0.375.
pub const HOT_FRACTION: f64 = 0.1425;

/// Cycles of the bulk temperature field along the particle array; slow
/// relative to region sizes, so bulk energies are locally narrow — the
/// property that makes per-region histograms informative and WAH bitmap
/// bins compressible (thermal plasma: nearby particles share a local
/// temperature).
pub const TEMPERATURE_CYCLES: f64 = 23.0;

/// The seven VPIC variables.
#[derive(Debug, Clone)]
pub struct VpicData {
    /// Particle energy.
    pub energy: Vec<f32>,
    /// Positions.
    pub x: Vec<f32>,
    /// Positions.
    pub y: Vec<f32>,
    /// Positions.
    pub z: Vec<f32>,
    /// Momenta.
    pub ux: Vec<f32>,
    /// Momenta.
    pub uy: Vec<f32>,
    /// Momenta.
    pub uz: Vec<f32>,
}

/// Ids of the seven imported objects.
#[derive(Debug, Clone, Copy)]
pub struct VpicObjects {
    /// `Energy`
    pub energy: ObjectId,
    /// `x`
    pub x: ObjectId,
    /// `y`
    pub y: ObjectId,
    /// `z`
    pub z: ObjectId,
    /// `Ux`
    pub ux: ObjectId,
    /// `Uy`
    pub uy: ObjectId,
    /// `Uz`
    pub uz: ObjectId,
}

impl VpicData {
    /// Generate the dataset.
    pub fn generate(cfg: &VpicConfig) -> VpicData {
        let n = cfg.particles;
        let mut rng = dist::rng(cfg.seed);
        // Tail energies are drawn per index *block*: energetic particles
        // accelerated together share a narrow energy band (and make the
        // bitmap index compress, as real VPIC data does). The marginal
        // distribution stays the calibrated truncated exponential.
        let mut block_rng = dist::rng(cfg.seed ^ 0xB10C_B10C);
        let tail_blocks: Vec<f64> = (0..n / TAIL_BLOCK + 2)
            .map(|_| dist::truncated_exponential(&mut block_rng, TAIL_RATE, 2.55))
            .collect();
        let mut energy = Vec::with_capacity(n);
        let mut x = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        let mut z = Vec::with_capacity(n);
        let mut ux = Vec::with_capacity(n);
        let mut uy = Vec::with_capacity(n);
        let mut uz = Vec::with_capacity(n);

        // Position cycling periods (fractions of the whole array): x ramps
        // once; y cycles ~40 times; z cycles ~600 times — a row-major cell
        // sweep. Jitter adds sub-cell scatter.
        let y_cycles = 40.0;
        let z_cycles = 600.0;
        for i in 0..n {
            let u = i as f64 / n as f64;
            let jx: f64 = rng.gen_range(-0.5..0.5) * (X_MAX / 96.0);
            let jy: f64 = rng.gen_range(-0.5..0.5) * ((Y_MAX - Y_MIN) / 64.0);
            let jz: f64 = rng.gen_range(-0.5..0.5) * (Z_MAX / 48.0);
            let px = (u * X_MAX + jx).clamp(0.0, X_MAX);
            let py = (Y_MIN + dist::triangle(u * y_cycles) * (Y_MAX - Y_MIN) + jy)
                .clamp(Y_MIN, Y_MAX);
            let pz = (dist::triangle(u * z_cycles) * Z_MAX + jz).clamp(0.0, Z_MAX);

            // Energetic particles live where the particle *is*: the
            // reconnection region at high x / high y. Because particles
            // are stored in cell order, tail energies are thereby also
            // clustered in *index* space — whole array regions are
            // tail-free, which is what makes histogram-based region
            // elimination effective (as on the real VPIC data). The
            // conditional probabilities keep the overall tail mass at the
            // calibrated TAIL_MASS.
            let hot = px > 0.62 * X_MAX && py > 0.25 * Y_MAX;
            let p_tail = if hot {
                TAIL_MASS * TAIL_CONCENTRATION / HOT_FRACTION
            } else {
                TAIL_MASS * (1.0 - TAIL_CONCENTRATION) / (1.0 - HOT_FRACTION)
            };
            let is_tail = rng.gen::<f64>() < p_tail;
            let e = if is_tail {
                (2.0 + tail_blocks[i / TAIL_BLOCK] + dist::normal(&mut rng, 0.0, 0.02))
                    .clamp(2.0, 4.6)
            } else {
                let temperature = 0.05
                    + 0.75 * (1.0 + (2.0 * std::f64::consts::PI * u * TEMPERATURE_CYCLES).sin());
                (temperature + dist::normal(&mut rng, 0.0, 0.08)).clamp(0.0, 1.999)
            };

            // Momenta: thermal spread scaled by energy.
            let sigma = (e.max(1e-3)).sqrt() * 0.4;
            ux.push(dist::normal(&mut rng, 0.0, sigma) as f32);
            uy.push(dist::normal(&mut rng, 0.0, sigma) as f32);
            uz.push(dist::normal(&mut rng, 0.0, sigma) as f32);
            energy.push(e as f32);
            x.push(px as f32);
            y.push(py as f32);
            z.push(pz as f32);
        }
        VpicData { energy, x, y, z, ux, uy, uz }
    }

    /// Number of particles.
    pub fn len(&self) -> usize {
        self.energy.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.energy.is_empty()
    }

    /// The seven variables as `(name, values)` pairs.
    pub fn variables(&self) -> [(&'static str, &Vec<f32>); 7] {
        [
            ("Energy", &self.energy),
            ("x", &self.x),
            ("y", &self.y),
            ("z", &self.z),
            ("Ux", &self.ux),
            ("Uy", &self.uy),
            ("Uz", &self.uz),
        ]
    }

    /// Import all seven variables into an ODMS; returns the object ids
    /// and the per-object import reports. `opts.build_sorted` applies to
    /// `Energy` only — the paper sorts by the primary queried object.
    pub fn import_all(
        &self,
        odms: &Odms,
        container: ContainerId,
        opts: &ImportOptions,
    ) -> PdcResult<(VpicObjects, Vec<ImportReport>)> {
        let mut ids = Vec::with_capacity(7);
        let mut reports = Vec::with_capacity(7);
        for (i, (name, values)) in self.variables().into_iter().enumerate() {
            let var_opts = ImportOptions { build_sorted: opts.build_sorted && i == 0, ..opts.clone() };
            let report =
                odms.import_array(container, name, TypedVec::Float(values.clone()), &var_opts)?;
            ids.push(report.object);
            reports.push(report);
        }
        Ok((
            VpicObjects {
                energy: ids[0],
                x: ids[1],
                y: ids[2],
                z: ids[3],
                ux: ids[4],
                uy: ids[5],
                uz: ids[6],
            },
            reports,
        ))
    }

    /// Exact selectivity of an interval on one variable (ground truth for
    /// target-vs-achieved reporting).
    pub fn exact_selectivity(values: &[f32], interval: &pdc_types::Interval) -> f64 {
        if values.is_empty() {
            return 0.0;
        }
        values.iter().filter(|&&v| interval.contains(v as f64)).count() as f64
            / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_types::Interval;

    fn small() -> VpicData {
        VpicData::generate(&VpicConfig { particles: 400_000, seed: 1234 })
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = VpicConfig { particles: 10_000, seed: 99 };
        let a = VpicData::generate(&cfg);
        let b = VpicData::generate(&cfg);
        assert_eq!(a.energy, b.energy);
        assert_eq!(a.x, b.x);
    }

    #[test]
    fn anchor_selectivity_low_end() {
        // paper: 2.1 < E < 2.2 -> 1.3025 %
        let d = small();
        let s = VpicData::exact_selectivity(&d.energy, &Interval::open(2.1, 2.2));
        assert!((s - 0.0130).abs() < 0.0025, "got {s}, want ~0.0130");
    }

    #[test]
    fn anchor_selectivity_high_end() {
        // paper: 3.5 < E < 3.6 -> 0.0004 % = 4e-6; with 400k particles the
        // expected count is ~1.6, so just bound it loosely.
        let d = small();
        let s = VpicData::exact_selectivity(&d.energy, &Interval::open(3.5, 3.6));
        assert!(s < 5e-5, "got {s}, want ~4e-6");
    }

    #[test]
    fn selectivity_decreases_along_the_sweep() {
        // Tail energies are drawn per block, so small windows are noisy at
        // this sample size; check the decay over wider windows where the
        // expectation dominates the block quantization.
        let d = small();
        let mut prev = f64::INFINITY;
        for k in 0..4 {
            let lo = 2.0 + 0.4 * k as f64;
            let s = VpicData::exact_selectivity(&d.energy, &Interval::open(lo, lo + 0.4));
            assert!(s < prev, "selectivity not decaying at {lo}: {s} vs {prev}");
            prev = s;
        }
    }

    #[test]
    fn positions_inside_domain() {
        let d = small();
        assert!(d.x.iter().all(|&v| (0.0..=X_MAX as f32).contains(&v)));
        assert!(d.y.iter().all(|&v| (Y_MIN as f32..=Y_MAX as f32).contains(&v)));
        assert!(d.z.iter().all(|&v| (0.0..=Z_MAX as f32).contains(&v)));
    }

    #[test]
    fn x_is_smooth_along_the_array() {
        // Cell-ordered layout: the first tenth of the array must stay at
        // low x (up to jitter and relocated tail particles).
        let d = small();
        let tenth = d.len() / 10;
        let low_x = d.x[..tenth].iter().filter(|&&v| v < 0.2 * X_MAX as f32).count();
        assert!(
            low_x as f64 > 0.9 * tenth as f64,
            "x not smooth: only {low_x}/{tenth} small"
        );
    }

    #[test]
    fn tail_particles_cluster_in_reconnection_region() {
        let d = small();
        let (mut inside, mut total) = (0u64, 0u64);
        for i in 0..d.len() {
            if d.energy[i] > 2.0 {
                total += 1;
                if d.x[i] > 200.0 && d.y[i] > 25.0 {
                    inside += 1;
                }
            }
        }
        assert!(total > 0);
        let frac = inside as f64 / total as f64;
        assert!(frac > 0.9, "only {frac:.3} of tail particles in the hot region");
    }

    #[test]
    fn joint_multiobject_selectivity_is_tiny() {
        // paper Q1: E > 2.0 AND 100<x<200 AND -90<y<0 AND 0<z<66
        // -> 0.0013 %.
        let d = small();
        let n = d.len();
        let hits = (0..n)
            .filter(|&i| {
                d.energy[i] > 2.0
                    && d.x[i] > 100.0
                    && d.x[i] < 200.0
                    && d.y[i] > -90.0
                    && d.y[i] < 0.0
                    && d.z[i] > 0.0
                    && d.z[i] < 66.0
            })
            .count();
        let s = hits as f64 / n as f64;
        assert!(s < 2e-4, "joint selectivity {s} not in the paper's regime");
    }

    #[test]
    fn energy_threshold_vs_x_band_selectivity_ordering() {
        // The Fig. 4 anomaly requires P(E > 1.3) > P(100 < x < 140) so the
        // planner evaluates x first for the last catalog queries.
        let d = small();
        let e = VpicData::exact_selectivity(
            &d.energy,
            &Interval::from_op(pdc_types::QueryOp::Gt, 1.3),
        );
        let x = VpicData::exact_selectivity(&d.x, &Interval::open(100.0, 140.0));
        assert!(e > x, "P(E>1.3)={e} must exceed P(100<x<140)={x}");
    }

    #[test]
    fn momenta_scale_with_energy() {
        let d = small();
        // mean |ux| of tail particles should exceed that of bulk.
        let (mut tail_sum, mut tail_n, mut bulk_sum, mut bulk_n) = (0.0f64, 0u64, 0.0f64, 0u64);
        for i in 0..d.len() {
            if d.energy[i] > 2.0 {
                tail_sum += d.ux[i].abs() as f64;
                tail_n += 1;
            } else if d.energy[i] < 0.5 {
                bulk_sum += d.ux[i].abs() as f64;
                bulk_n += 1;
            }
        }
        assert!(tail_sum / tail_n as f64 > bulk_sum / bulk_n as f64);
    }
}
