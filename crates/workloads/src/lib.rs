//! # pdc-workloads
//!
//! Calibrated synthetic workloads standing in for the paper's datasets
//! (§V): the 3.3 TB / 125-billion-particle VPIC plasma dataset and the
//! 25-million-object BOSS astronomical survey. Neither is available here,
//! so we generate scaled replicas that preserve the properties the
//! evaluation depends on:
//!
//! * [`vpic`] — seven f32 variables (`Energy`, `x`, `y`, `z`, `Ux`, `Uy`,
//!   `Uz`). Particles are laid out in cell order (as VPIC writes them), so
//!   positions vary smoothly along the array — that is what makes
//!   histogram-based region pruning and WAH bitmap compression effective.
//!   The energy distribution is calibrated so the paper's endpoint
//!   selectivities hold: `2.1 < Energy < 2.2` ≈ 1.30 % and
//!   `3.5 < Energy < 3.6` ≈ 0.0004 %. Energetic (tail) particles cluster
//!   in a "reconnection" region of the domain, giving the multi-object
//!   queries their sub-0.01 % joint selectivities.
//! * [`boss`] — many small objects, each with `RADEG`/`DECDEG`/`PLATE`
//!   metadata and a per-fiber `flux` array; a designated (RA, Dec) pair
//!   selects exactly 1000 objects as in §VI-C.
//! * [`catalog`] — the paper's query catalogs: the 15 single-object
//!   queries of Fig. 3, the 6 multi-object queries of Fig. 4, and the
//!   flux-range queries of Fig. 5, each with its paper-reported
//!   selectivity for target-vs-achieved comparison.
//! * [`dist`] — the deterministic samplers underneath.

pub mod boss;
pub mod catalog;
pub mod dist;
pub mod vpic;

pub use boss::{BossConfig, BossData};
pub use catalog::{
    boss_flux_catalog, multi_object_catalog, single_object_catalog, BossQuerySpec,
    MultiObjectQuerySpec, SingleObjectQuerySpec,
};
pub use vpic::{VpicConfig, VpicData};
