//! The BOSS-like object catalog (paper §VI-C).
//!
//! H5BOSS holds ~25 million small objects (fiber spectra), each with rich
//! metadata. We generate a scaled catalog: every object carries
//! `RADEG`/`DECDEG`/`PLATE` attributes and a per-fiber `flux` array; one
//! designated (RA, Dec) pair is shared by exactly
//! [`BossConfig::matching_objects`] objects, so the paper's metadata query
//! (`RADEG=153.17 AND DECDEG=23.06`, selecting 1000 objects) reproduces at
//! any scale.

use crate::dist;
use pdc_odms::{ImportOptions, MetaValue, Odms};
use pdc_types::{ObjectId, PdcResult, TypedVec};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The paper's metadata query constants.
pub const TARGET_RADEG: f64 = 153.17;
/// See [`TARGET_RADEG`].
pub const TARGET_DECDEG: f64 = 23.06;
/// Mean of the flux exponential distribution.
pub const FLUX_MEAN: f64 = 15.0;

/// Generator parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BossConfig {
    /// Total number of objects (the paper has ~25 million).
    pub objects: usize,
    /// Objects sharing the designated (RA, Dec) pair (paper: 1000).
    pub matching_objects: usize,
    /// Flux values per object (spectra are a few thousand samples).
    pub values_per_object: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BossConfig {
    fn default() -> Self {
        Self { objects: 5_000, matching_objects: 1_000, values_per_object: 512, seed: 0xB055 }
    }
}

/// A generated BOSS-like catalog, already imported into an ODMS.
#[derive(Debug)]
pub struct BossData {
    /// All object ids, in import order.
    pub objects: Vec<ObjectId>,
    /// The ids carrying the designated (RA, Dec) pair.
    pub matching: Vec<ObjectId>,
    /// Total flux values imported.
    pub total_values: u64,
    /// Total data bytes imported.
    pub total_bytes: u64,
}

impl BossData {
    /// Generate and import the catalog. `opts` controls indexing; region
    /// size is forced to cover a whole object ("each object has one region
    /// only in PDC-Query").
    pub fn generate_and_import(
        odms: &Odms,
        cfg: &BossConfig,
        opts: &ImportOptions,
    ) -> PdcResult<BossData> {
        let container = odms.create_container("h5boss");
        let mut rng = dist::rng(cfg.seed);
        let mut objects = Vec::with_capacity(cfg.objects);
        let mut matching = Vec::with_capacity(cfg.matching_objects);
        let mut total_values = 0u64;
        let mut total_bytes = 0u64;

        for i in 0..cfg.objects {
            let is_match = i < cfg.matching_objects;
            // Spread non-matching objects over a quantized sky grid; a
            // collision with the target pair is excluded by construction.
            let (ra, dec) = if is_match {
                (TARGET_RADEG, TARGET_DECDEG)
            } else {
                let ra = (rng.gen_range(0.0f64..360.0) * 100.0).round() / 100.0;
                let dec = (rng.gen_range(-30.0f64..60.0) * 100.0).round() / 100.0;
                if (ra - TARGET_RADEG).abs() < 1e-9 && (dec - TARGET_DECDEG).abs() < 1e-9 {
                    (ra + 0.01, dec)
                } else {
                    (ra, dec)
                }
            };
            let flux: Vec<f32> = (0..cfg.values_per_object)
                .map(|_| dist::exponential(&mut rng, 1.0 / FLUX_MEAN) as f32)
                .collect();
            let mut attrs = BTreeMap::new();
            attrs.insert("RADEG".to_string(), MetaValue::F64(ra));
            attrs.insert("DECDEG".to_string(), MetaValue::F64(dec));
            attrs.insert("PLATE".to_string(), MetaValue::I64((i / 640) as i64));
            attrs.insert("FIBER".to_string(), MetaValue::I64((i % 640) as i64));
            let obj_opts = ImportOptions {
                // One region per object.
                region_bytes: (cfg.values_per_object as u64 * 4).max(4),
                attrs,
                ..opts.clone()
            };
            let report =
                odms.import_array(container, &format!("fiber-{i:07}"), TypedVec::Float(flux), &obj_opts)?;
            total_values += cfg.values_per_object as u64;
            total_bytes += report.data_bytes;
            if is_match {
                matching.push(report.object);
            }
            objects.push(report.object);
        }
        Ok(BossData { objects, matching, total_values, total_bytes })
    }

    /// The paper's metadata conditions selecting the designated objects.
    pub fn target_conds() -> [(&'static str, MetaValue); 2] {
        [
            ("RADEG", MetaValue::F64(TARGET_RADEG)),
            ("DECDEG", MetaValue::F64(TARGET_DECDEG)),
        ]
    }

    /// The flux bound whose `0 < flux < bound` query has the given
    /// selectivity under the exponential flux distribution.
    pub fn flux_bound_for_selectivity(selectivity: f64) -> f64 {
        -FLUX_MEAN * (1.0 - selectivity).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_types::Interval;

    fn small_catalog() -> (Odms, BossData) {
        let odms = Odms::new(8);
        let cfg = BossConfig {
            objects: 300,
            matching_objects: 50,
            values_per_object: 128,
            seed: 7,
        };
        let data =
            BossData::generate_and_import(&odms, &cfg, &ImportOptions::default()).unwrap();
        (odms, data)
    }

    #[test]
    fn metadata_query_selects_exactly_the_designated_objects() {
        let (odms, data) = small_catalog();
        let hits = odms.meta().query_tags(&BossData::target_conds());
        assert_eq!(hits.len(), 50);
        let mut expect = data.matching.clone();
        expect.sort_unstable();
        assert_eq!(hits, expect);
    }

    #[test]
    fn every_object_has_one_region() {
        let (odms, data) = small_catalog();
        for &o in data.objects.iter().take(20) {
            assert_eq!(odms.meta().get(o).unwrap().num_regions(), 1);
        }
    }

    #[test]
    fn flux_bound_selectivity_roundtrip() {
        // Empirical check: the computed bound yields the requested
        // selectivity on generated flux data.
        let (odms, data) = small_catalog();
        let bound = BossData::flux_bound_for_selectivity(0.40);
        let iv = Interval::open(0.0, bound);
        let mut hits = 0u64;
        let mut total = 0u64;
        for &o in &data.objects {
            let payload = odms.read_region(o, 0).unwrap();
            total += payload.len() as u64;
            hits += pdc_types::kernels::count_matches(&payload, &iv);
        }
        let got = hits as f64 / total as f64;
        assert!((got - 0.40).abs() < 0.02, "selectivity {got}, want 0.40");
    }

    #[test]
    fn histograms_built_per_object() {
        let (odms, data) = small_catalog();
        for &o in data.objects.iter().take(5) {
            let g = odms.meta().global_histogram(o).unwrap();
            assert_eq!(g.total(), 128);
        }
    }

    #[test]
    fn catalog_sizes_accounted() {
        let (_odms, data) = small_catalog();
        assert_eq!(data.total_values, 300 * 128);
        assert_eq!(data.total_bytes, 300 * 128 * 4);
        assert_eq!(data.objects.len(), 300);
    }
}
