//! The paper's query catalogs (§V): "we have constructed 21 different
//! queries with single or multiple constraints".
//!
//! * 15 single-object range queries on `Energy`, spanning selectivities
//!   1.3025 % down to 0.0004 % (Fig. 3). The paper names the endpoints
//!   (`2.1 < E < 2.2` and `3.5 < E < 3.6`); the interior queries step the
//!   window down the energy tail in 0.1 increments — exactly 15 windows.
//! * 6 multi-object queries on `(Energy, x, y, z)` between the paper's
//!   two named endpoints (Fig. 4), 0.0013 %–0.0442 %.
//! * Flux-range queries on the BOSS catalog at 11 %–65 % data selectivity
//!   with the metadata constraint fixed to 1000 objects (Fig. 5).

use serde::{Deserialize, Serialize};

/// One single-object range query `lo < Energy < hi`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SingleObjectQuerySpec {
    /// Lower bound (exclusive).
    pub lo: f32,
    /// Upper bound (exclusive).
    pub hi: f32,
    /// Selectivity the paper reports for its dataset (fraction), where
    /// stated; interior points are interpolated on the calibrated tail.
    pub paper_selectivity: f64,
}

/// One multi-object conjunction (Fig. 4's `energy, x, y, z` queries).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MultiObjectQuerySpec {
    /// `Energy > energy_gt`.
    pub energy_gt: f32,
    /// `x_lo < x < x_hi`.
    pub x_lo: f32,
    /// See `x_lo`.
    pub x_hi: f32,
    /// `y_lo < y < y_hi`.
    pub y_lo: f32,
    /// See `y_lo`.
    pub y_hi: f32,
    /// `z_lo < z < z_hi`.
    pub z_lo: f32,
    /// See `z_lo`.
    pub z_hi: f32,
    /// The paper's joint selectivity where stated (endpoints only).
    pub paper_selectivity: f64,
}

/// One BOSS data-condition spec (metadata condition is fixed).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BossQuerySpec {
    /// Target data selectivity (the paper's x-axis: 11 %–65 %).
    pub selectivity: f64,
}

/// The 15 single-object queries of Fig. 3: windows `(2.1+k/10, 2.2+k/10)`
/// for `k = 0..15`. Under the calibrated tail (`rate` 5.78, mass 5.29 %),
/// window `k` has selectivity `0.013025 · e^(−0.578·k)`, hitting the
/// paper's two anchors at `k = 0` (1.3025 %) and `k = 14` (0.0004 %).
pub fn single_object_catalog() -> Vec<SingleObjectQuerySpec> {
    (0..15)
        .map(|k| {
            let lo = 2.1 + 0.1 * k as f64;
            SingleObjectQuerySpec {
                lo: lo as f32,
                hi: (lo + 0.1) as f32,
                paper_selectivity: 0.013025 * (-0.578 * k as f64).exp(),
            }
        })
        .collect()
}

/// The 6 multi-object queries of Fig. 4, interpolating between the
/// paper's two named endpoints:
/// `E>2.0 ∧ 100<x<200 ∧ −90<y<0 ∧ 0<z<66` (0.0013 %) and
/// `E>1.3 ∧ 100<x<140 ∧ −100<y<0 ∧ 0<z<66` (0.0442 %).
pub fn multi_object_catalog() -> Vec<MultiObjectQuerySpec> {
    let energy = [2.0f32, 1.9, 1.8, 1.6, 1.5, 1.3];
    let x_hi = [200.0f32, 190.0, 180.0, 160.0, 150.0, 140.0];
    let y_lo = [-90.0f32, -92.0, -94.0, -96.0, -98.0, -100.0];
    let paper = [0.000013, f64::NAN, f64::NAN, f64::NAN, f64::NAN, 0.000442];
    (0..6)
        .map(|i| MultiObjectQuerySpec {
            energy_gt: energy[i],
            x_lo: 100.0,
            x_hi: x_hi[i],
            y_lo: y_lo[i],
            y_hi: 0.0,
            z_lo: 0.0,
            z_hi: 66.0,
            paper_selectivity: paper[i],
        })
        .collect()
}

/// The Fig. 5 data-selectivity sweep (the paper varies the flux condition
/// from 11 % to 65 %).
pub fn boss_flux_catalog() -> Vec<BossQuerySpec> {
    [0.11, 0.25, 0.40, 0.65].iter().map(|&s| BossQuerySpec { selectivity: s }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vpic::{VpicConfig, VpicData};
    use pdc_types::Interval;

    #[test]
    fn single_catalog_has_15_queries_with_paper_anchors() {
        let cat = single_object_catalog();
        assert_eq!(cat.len(), 15);
        assert!((cat[0].lo - 2.1).abs() < 1e-6);
        assert!((cat[0].hi - 2.2).abs() < 1e-6);
        assert!((cat[0].paper_selectivity - 0.013025).abs() < 1e-9);
        assert!((cat[14].lo - 3.5).abs() < 1e-5);
        assert!((cat[14].hi - 3.6).abs() < 1e-5);
        assert!((cat[14].paper_selectivity - 4e-6).abs() < 2e-6);
        // strictly decreasing selectivity
        for w in cat.windows(2) {
            assert!(w[1].paper_selectivity < w[0].paper_selectivity);
        }
    }

    #[test]
    fn multi_catalog_matches_paper_endpoints() {
        let cat = multi_object_catalog();
        assert_eq!(cat.len(), 6);
        let q1 = &cat[0];
        assert_eq!(q1.energy_gt, 2.0);
        assert_eq!((q1.x_lo, q1.x_hi), (100.0, 200.0));
        assert_eq!((q1.y_lo, q1.y_hi), (-90.0, 0.0));
        assert_eq!((q1.z_lo, q1.z_hi), (0.0, 66.0));
        let q6 = &cat[5];
        assert_eq!(q6.energy_gt, 1.3);
        assert_eq!((q6.x_lo, q6.x_hi), (100.0, 140.0));
        assert_eq!((q6.y_lo, q6.y_hi), (-100.0, 0.0));
    }

    #[test]
    fn boss_catalog_spans_the_paper_range() {
        let cat = boss_flux_catalog();
        assert!((cat.first().unwrap().selectivity - 0.11).abs() < 1e-9);
        assert!((cat.last().unwrap().selectivity - 0.65).abs() < 1e-9);
    }

    #[test]
    fn generated_data_tracks_catalog_targets() {
        // Achieved selectivities of the 15 windows must follow the
        // calibrated targets within sampling noise (large windows only;
        // the smallest expect < 1 hit at this scale).
        let d = VpicData::generate(&VpicConfig { particles: 500_000, seed: 31 });
        for spec in single_object_catalog().iter().take(6) {
            let achieved = VpicData::exact_selectivity(
                &d.energy,
                &Interval::open(spec.lo as f64, spec.hi as f64),
            );
            let target = spec.paper_selectivity;
            assert!(
                achieved > target * 0.5 && achieved < target * 2.0,
                "window ({}, {}): achieved {achieved}, target {target}",
                spec.lo,
                spec.hi
            );
        }
    }
}
