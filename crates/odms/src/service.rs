//! The metadata service.
//!
//! In PDC, "a metadata object is managed by only one server to guarantee
//! consistency"; metadata is small, pre-loaded, and served from memory.
//! This service holds the object registry, the attribute (tag) inverted
//! index used by `PDCquery_tag`-style metadata queries, the per-region
//! local histograms, the merged **global histograms**, and the registries
//! of derived artifacts (bitmap-index objects, sorted replicas).

use crate::meta::{MetaValue, ObjectMeta};
use parking_lot::RwLock;
use pdc_directory::{JointGrid, RegionDirectory};
use pdc_histogram::{merge_all, Histogram};
use pdc_sorted::SortedReplica;
use pdc_types::{ContainerId, ObjectId, PdcError, PdcResult, ServerId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// In-memory metadata service.
#[derive(Debug, Default)]
pub struct MetadataService {
    next_id: AtomicU64,
    objects: RwLock<HashMap<ObjectId, Arc<ObjectMeta>>>,
    by_name: RwLock<HashMap<String, ObjectId>>,
    containers: RwLock<HashMap<ContainerId, String>>,
    /// Inverted attribute index: key -> value -> object ids.
    attr_index: RwLock<HashMap<String, HashMap<MetaValue, Vec<ObjectId>>>>,
    /// Per-object, per-region local histograms.
    region_hists: RwLock<HashMap<ObjectId, Arc<Vec<Histogram>>>>,
    /// Per-object merged global histogram.
    global_hists: RwLock<HashMap<ObjectId, Arc<Histogram>>>,
    /// Per-object sorted replica.
    sorted: RwLock<HashMap<ObjectId, Arc<SortedReplica>>>,
    /// Per-object serialized index region sizes (bytes per region).
    index_sizes: RwLock<HashMap<ObjectId, Arc<Vec<u64>>>>,
    /// Per-object hierarchical region directory (bin tree over region
    /// value bounds).
    directories: RwLock<HashMap<ObjectId, Arc<RegionDirectory>>>,
    /// Joint-bounds grids of registered variable pairs, keyed by the
    /// pair in registration order.
    joint_grids: RwLock<HashMap<(ObjectId, ObjectId), Arc<JointGrid>>>,
}

impl MetadataService {
    /// A fresh service.
    pub fn new() -> Self {
        Self { next_id: AtomicU64::new(1), ..Default::default() }
    }

    /// Allocate a new unique id.
    pub fn alloc_id(&self) -> ObjectId {
        ObjectId(self.next_id.fetch_add(1, Ordering::Relaxed))
    }

    /// Create a container.
    pub fn create_container(&self, name: &str) -> ContainerId {
        let id = ContainerId(self.next_id.fetch_add(1, Ordering::Relaxed));
        self.containers.write().insert(id, name.to_string());
        id
    }

    /// Container name lookup.
    pub fn container_name(&self, id: ContainerId) -> Option<String> {
        self.containers.read().get(&id).cloned()
    }

    /// Register an object's metadata (also indexes its attributes).
    pub fn register_object(&self, meta: ObjectMeta) -> Arc<ObjectMeta> {
        let meta = Arc::new(meta);
        self.by_name.write().insert(meta.name.clone(), meta.id);
        {
            let mut idx = self.attr_index.write();
            for (k, v) in &meta.attrs {
                let list = idx.entry(k.clone()).or_default().entry(v.clone()).or_default();
                // Re-registration (shape growth on append) must not leave
                // duplicate postings behind.
                if !list.contains(&meta.id) {
                    list.push(meta.id);
                }
            }
        }
        self.objects.write().insert(meta.id, Arc::clone(&meta));
        meta
    }

    /// Fetch an object's metadata.
    pub fn get(&self, id: ObjectId) -> PdcResult<Arc<ObjectMeta>> {
        self.objects.read().get(&id).cloned().ok_or(PdcError::NoSuchObject(id))
    }

    /// Look an object up by name.
    pub fn lookup_name(&self, name: &str) -> PdcResult<Arc<ObjectMeta>> {
        let id = self
            .by_name
            .read()
            .get(name)
            .copied()
            .ok_or_else(|| PdcError::NotFound(format!("object '{name}'")))?;
        self.get(id)
    }

    /// Number of registered objects.
    pub fn num_objects(&self) -> usize {
        self.objects.read().len()
    }

    /// All object metadata records (cloned), ordered by id — the
    /// persistence path's view of the registry.
    pub fn all_objects(&self) -> Vec<ObjectMeta> {
        let mut out: Vec<ObjectMeta> =
            self.objects.read().values().map(|m| (**m).clone()).collect();
        out.sort_by_key(|m| m.id);
        out
    }

    /// All containers as `(raw id, name)`, ordered by id.
    pub fn all_containers(&self) -> Vec<(u64, String)> {
        let mut out: Vec<(u64, String)> =
            self.containers.read().iter().map(|(id, n)| (id.raw(), n.clone())).collect();
        out.sort_unstable();
        out
    }

    /// The next-id watermark (for persistence).
    pub fn next_id_watermark(&self) -> u64 {
        self.next_id.load(Ordering::Relaxed)
    }

    /// Raise the id allocator to at least `watermark` (restore path).
    pub fn bump_next_id(&self, watermark: u64) {
        self.next_id.fetch_max(watermark, Ordering::Relaxed);
    }

    /// Re-register a container under its original id (restore path).
    pub fn restore_container(&self, id: ContainerId, name: &str) {
        self.containers.write().insert(id, name.to_string());
    }

    /// The owner server of a metadata object: consistent hashing over
    /// `num_servers` ("a metadata object is managed by only one server").
    pub fn owner(&self, id: ObjectId, num_servers: u32) -> ServerId {
        // Fibonacci hashing spreads sequential ids evenly.
        let h = id.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ServerId((h >> 32) as u32 % num_servers.max(1))
    }

    /// Metadata (tag) query: objects whose attributes match **all** the
    /// given key/value conditions. This is the `PDCquery_tag` path used by
    /// the H5BOSS experiment ("RADEG=153.17 AND DECDEG=23.06").
    pub fn query_tags(&self, conds: &[(&str, MetaValue)]) -> Vec<ObjectId> {
        if conds.is_empty() {
            return Vec::new();
        }
        let idx = self.attr_index.read();
        // Start from the rarest condition to keep the intersection cheap.
        let mut lists: Vec<&Vec<ObjectId>> = Vec::with_capacity(conds.len());
        for (k, v) in conds {
            match idx.get(*k).and_then(|m| m.get(v)) {
                Some(list) => lists.push(list),
                None => return Vec::new(),
            }
        }
        lists.sort_by_key(|l| l.len());
        let mut result: Vec<ObjectId> = lists[0].clone();
        for list in &lists[1..] {
            let set: std::collections::HashSet<ObjectId> = list.iter().copied().collect();
            result.retain(|id| set.contains(id));
        }
        result.sort_unstable();
        result
    }

    /// Record the per-region local histograms of an object and merge them
    /// into the object's global histogram.
    pub fn set_region_histograms(&self, id: ObjectId, hists: Vec<Histogram>) {
        let global = merge_all(hists.iter());
        self.region_hists.write().insert(id, Arc::new(hists));
        if let Some(g) = global {
            self.global_hists.write().insert(id, Arc::new(g));
        }
    }

    /// The local histograms of an object's regions.
    pub fn region_histograms(&self, id: ObjectId) -> PdcResult<Arc<Vec<Histogram>>> {
        self.region_hists
            .read()
            .get(&id)
            .cloned()
            .ok_or_else(|| PdcError::MissingPrerequisite(format!("histograms of {id}")))
    }

    /// The merged global histogram of an object (`PDCquery_get_histogram`):
    /// "automatically generated by the PDC system at no additional cost".
    pub fn global_histogram(&self, id: ObjectId) -> PdcResult<Arc<Histogram>> {
        self.global_hists
            .read()
            .get(&id)
            .cloned()
            .ok_or_else(|| PdcError::MissingPrerequisite(format!("global histogram of {id}")))
    }

    /// Register a sorted replica for an object.
    pub fn set_sorted_replica(&self, id: ObjectId, replica: SortedReplica) {
        self.sorted.write().insert(id, Arc::new(replica));
    }

    /// The sorted replica of an object, if built.
    pub fn sorted_replica(&self, id: ObjectId) -> PdcResult<Arc<SortedReplica>> {
        self.sorted
            .read()
            .get(&id)
            .cloned()
            .ok_or_else(|| PdcError::MissingPrerequisite(format!("sorted replica of {id}")))
    }

    /// Incrementally extend an object's histograms after a streaming
    /// append — the metadata half of the ingest path.
    ///
    /// * `tail` replaces the (previously partial) tail region's local
    ///   histogram with its merged successor.
    /// * `new_hists` are the local histograms of freshly appended regions,
    ///   pushed in region order.
    /// * `deltas` are the histograms of only the *appended* elements; they
    ///   fold into the existing global histogram via
    ///   [`Histogram::merge_in_place`] — no from-scratch re-merge of all
    ///   region histograms, which is what keeps per-append metadata work
    ///   O(appended regions) instead of O(total regions).
    pub fn extend_histograms(
        &self,
        id: ObjectId,
        tail: Option<(u32, Histogram)>,
        new_hists: Vec<Histogram>,
        deltas: Vec<Histogram>,
    ) -> PdcResult<()> {
        let mut hists = self.region_histograms(id)?.as_ref().clone();
        if let Some((region, hist)) = tail {
            let slot = hists.get_mut(region as usize).ok_or_else(|| {
                PdcError::NotFound(format!("histogram of region {region} of {id}"))
            })?;
            *slot = hist;
        }
        hists.extend(new_hists);
        let mut global = self.global_histogram(id)?.as_ref().clone();
        for d in &deltas {
            global.merge_in_place(d);
        }
        self.region_hists.write().insert(id, Arc::new(hists));
        self.global_hists.write().insert(id, Arc::new(global));
        Ok(())
    }

    /// Replace one region's local histogram and re-merge the object's
    /// global histogram — the integrity path after a region histogram
    /// fails [`Histogram::self_check`] and is rebuilt from data.
    pub fn replace_region_histogram(
        &self,
        id: ObjectId,
        region: u32,
        hist: Histogram,
    ) -> PdcResult<()> {
        let mut hists = self.region_histograms(id)?.as_ref().clone();
        let slot = hists.get_mut(region as usize).ok_or_else(|| {
            PdcError::NotFound(format!("histogram of region {region} of {id}"))
        })?;
        *slot = hist;
        self.set_region_histograms(id, hists);
        Ok(())
    }

    /// Record the serialized per-region index sizes of an object's bitmap
    /// index (used for I/O accounting and the E6 overhead experiment).
    pub fn set_index_sizes(&self, data_object: ObjectId, sizes: Vec<u64>) {
        self.index_sizes.write().insert(data_object, Arc::new(sizes));
    }

    /// Update one region's recorded serialized index size after an
    /// integrity rebuild (the rebuilt index may differ in size when the
    /// original binning configuration was non-default).
    pub fn update_index_size(&self, data_object: ObjectId, region: u32, size: u64) -> PdcResult<()> {
        let mut sizes = self.index_sizes(data_object)?.as_ref().clone();
        let slot = sizes.get_mut(region as usize).ok_or_else(|| {
            PdcError::NotFound(format!("index size of region {region} of {data_object}"))
        })?;
        *slot = size;
        self.set_index_sizes(data_object, sizes);
        Ok(())
    }

    /// Serialized per-region index sizes.
    pub fn index_sizes(&self, data_object: ObjectId) -> PdcResult<Arc<Vec<u64>>> {
        self.index_sizes
            .read()
            .get(&data_object)
            .cloned()
            .ok_or_else(|| PdcError::MissingPrerequisite(format!("index of {data_object}")))
    }

    /// Record (or replace) an object's hierarchical region directory.
    pub fn set_directory(&self, id: ObjectId, directory: RegionDirectory) {
        self.directories.write().insert(id, Arc::new(directory));
    }

    /// The hierarchical region directory of an object, if built. Absence
    /// is not an error: the directory is advisory and every consumer
    /// falls back to the full region-metadata walk.
    pub fn directory(&self, id: ObjectId) -> Option<Arc<RegionDirectory>> {
        self.directories.read().get(&id).cloned()
    }

    /// Record (or replace) the joint-bounds grid of a variable pair.
    pub fn set_joint_grid(&self, grid: JointGrid) {
        self.joint_grids.write().insert(grid.pair(), Arc::new(grid));
    }

    /// The joint-bounds grid registered for exactly `(a, b)` (in
    /// registration order), if any.
    pub fn joint_grid(&self, a: ObjectId, b: ObjectId) -> Option<Arc<JointGrid>> {
        self.joint_grids.read().get(&(a, b)).cloned()
    }

    /// Every joint-bounds grid that involves `id` (either side).
    pub fn joint_grids_for(&self, id: ObjectId) -> Vec<Arc<JointGrid>> {
        let mut out: Vec<Arc<JointGrid>> = self
            .joint_grids
            .read()
            .iter()
            .filter(|((a, b), _)| *a == id || *b == id)
            .map(|(_, g)| Arc::clone(g))
            .collect();
        out.sort_by_key(|g| g.pair());
        out
    }

    /// All registered pairs, ordered — the integrity sweep's worklist.
    pub fn all_joint_pairs(&self) -> Vec<(ObjectId, ObjectId)> {
        let mut out: Vec<(ObjectId, ObjectId)> =
            self.joint_grids.read().keys().copied().collect();
        out.sort_unstable();
        out
    }

    /// Total in-memory metadata footprint of the histograms (bytes) — the
    /// metadata-overhead side of the region-size trade-off.
    pub fn histogram_metadata_bytes(&self, id: ObjectId) -> u64 {
        let mut total = 0;
        if let Some(hs) = self.region_hists.read().get(&id) {
            total += hs.iter().map(|h| h.size_bytes()).sum::<u64>();
        }
        if let Some(g) = self.global_hists.read().get(&id) {
            total += g.size_bytes();
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_histogram::HistogramConfig;
    use pdc_types::{PdcType, Shape};
    use std::collections::BTreeMap;

    fn svc_with_objects(n: usize) -> (MetadataService, Vec<ObjectId>) {
        let svc = MetadataService::new();
        let c = svc.create_container("cont");
        let mut ids = Vec::new();
        for i in 0..n {
            let id = svc.alloc_id();
            let mut attrs = BTreeMap::new();
            attrs.insert("plate".to_string(), MetaValue::from((i % 10) as i64));
            attrs.insert("ra".to_string(), MetaValue::from((i % 4) as f64 * 10.0));
            svc.register_object(ObjectMeta {
                id,
                container: c,
                name: format!("obj{i}"),
                pdc_type: PdcType::Float,
                shape: Shape::one_d(100),
                region_elems: 50,
                attrs,
                index_object: None,
                has_sorted_replica: false,
            });
            ids.push(id);
        }
        (svc, ids)
    }

    #[test]
    fn register_and_lookup() {
        let (svc, ids) = svc_with_objects(5);
        assert_eq!(svc.num_objects(), 5);
        let m = svc.get(ids[2]).unwrap();
        assert_eq!(m.name, "obj2");
        assert_eq!(svc.lookup_name("obj4").unwrap().id, ids[4]);
        assert!(svc.lookup_name("missing").is_err());
        assert!(svc.get(ObjectId(999)).is_err());
    }

    #[test]
    fn container_name_roundtrip() {
        let svc = MetadataService::new();
        let c = svc.create_container("vpic-run-7");
        assert_eq!(svc.container_name(c).unwrap(), "vpic-run-7");
    }

    #[test]
    fn tag_query_intersects_conditions() {
        let (svc, _ids) = svc_with_objects(40);
        // plate = 3 matches i = 3, 13, 23, 33 -> 4 objects
        let hits = svc.query_tags(&[("plate", MetaValue::from(3i64))]);
        assert_eq!(hits.len(), 4);
        // plate = 3 AND ra = 30.0 matches i%10==3 && i%4==3 -> i=3,23
        let hits = svc.query_tags(&[
            ("plate", MetaValue::from(3i64)),
            ("ra", MetaValue::from(30.0)),
        ]);
        assert_eq!(hits.len(), 2);
        // no such value
        assert!(svc.query_tags(&[("plate", MetaValue::from(99i64))]).is_empty());
        // no such key
        assert!(svc.query_tags(&[("nope", MetaValue::from(1i64))]).is_empty());
        // empty conditions
        assert!(svc.query_tags(&[]).is_empty());
    }

    #[test]
    fn owner_assignment_is_stable_and_spread() {
        let (svc, ids) = svc_with_objects(1000);
        let mut counts = [0u32; 8];
        for &id in &ids {
            let s = svc.owner(id, 8);
            assert_eq!(s, svc.owner(id, 8), "stable");
            counts[s.raw() as usize] += 1;
        }
        // roughly balanced: no server owns more than 2.5x the fair share
        for (i, &c) in counts.iter().enumerate() {
            assert!(c < 1000 / 8 * 5 / 2, "server {i} owns {c}");
            assert!(c > 0, "server {i} owns nothing");
        }
    }

    #[test]
    fn histograms_global_merge_and_lookup() {
        let (svc, ids) = svc_with_objects(1);
        let id = ids[0];
        let cfg = HistogramConfig::default();
        let h1 = Histogram::build(&[1.0, 2.0, 3.0], &cfg).unwrap();
        let h2 = Histogram::build(&[10.0, 20.0], &cfg).unwrap();
        svc.set_region_histograms(id, vec![h1, h2]);
        let g = svc.global_histogram(id).unwrap();
        assert_eq!(g.total(), 5);
        assert_eq!(svc.region_histograms(id).unwrap().len(), 2);
        assert!(svc.histogram_metadata_bytes(id) > 0);
        assert!(svc.global_histogram(ObjectId(777)).is_err());
    }

    #[test]
    fn sorted_replica_registry() {
        let (svc, ids) = svc_with_objects(1);
        assert!(svc.sorted_replica(ids[0]).is_err());
        svc.set_sorted_replica(ids[0], SortedReplica::build(&[3.0, 1.0, 2.0], 2));
        let r = svc.sorted_replica(ids[0]).unwrap();
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn index_sizes_registry() {
        let (svc, ids) = svc_with_objects(1);
        assert!(svc.index_sizes(ids[0]).is_err());
        svc.set_index_sizes(ids[0], vec![100, 200]);
        assert_eq!(*svc.index_sizes(ids[0]).unwrap(), vec![100, 200]);
    }
}
