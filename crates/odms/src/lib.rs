//! # pdc-odms
//!
//! The object-centric data management substrate (the PDC system of §II).
//!
//! * [`meta`] — object metadata: names, shapes, types, user attributes
//!   (key/value tags), links to derived artifacts (bitmap index objects,
//!   sorted replicas).
//! * [`service`] — the metadata service: object registry, name lookup,
//!   tag queries (`PDCquery_tag`), per-region histograms and the merged
//!   **global histogram** of every object, owner-server assignment.
//!   "Metadata is managed as an object too ... pre-loaded at server start
//!   time and stored as in-memory objects for efficient operations."
//! * [`system`] — the [`Odms`] facade: create containers, import arrays
//!   (partitioning them into regions, generating local histograms
//!   automatically, optionally building the per-region bitmap index and
//!   the value-sorted replica), and read regions back.

pub mod meta;
pub mod movement;
pub mod persist;
pub mod service;
pub mod system;

pub use meta::{MetaValue, ObjectMeta};
pub use movement::{MoveReport, RebuildReport};
pub use persist::{MetadataSnapshot, SnapshotJournal};
pub use service::MetadataService;
pub use system::{
    AppendReport, ImportOptions, ImportReport, MaintenanceReport, Odms, TenantRecord,
};
