//! The [`Odms`] facade: the assembled PDC substrate.
//!
//! Importing an array object performs PDC's ingest pipeline:
//!
//! 1. partition the array into regions of the configured size (§III-B);
//! 2. write each region's payload to the parallel-file-system tier;
//! 3. build each region's **local histogram** automatically ("a 'local'
//!    histogram is automatically generated for each data region when data
//!    is either produced within PDC or imported from an outside dataset")
//!    and fold them into the object's global histogram;
//! 4. optionally build the per-region **bitmap index** (serialized next to
//!    the data, like FastBit index files);
//! 5. optionally build the value-**sorted replica** ("we provide users the
//!    option to specify hints on how data should be organized").

use crate::meta::{MetaValue, ObjectMeta};
use crate::service::MetadataService;
use pdc_bitmap::{BinnedBitmapIndex, BinningConfig};
use pdc_bitmap::index::ValueDomain;
use pdc_histogram::{Histogram, HistogramConfig};
use pdc_sorted::SortedReplica;
use pdc_storage::{ObjectStore, StorageTier, StoredPayload};
use pdc_types::{ContainerId, ObjectId, PdcResult, RegionId, TypedVec};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Options controlling an import.
#[derive(Debug, Clone)]
pub struct ImportOptions {
    /// Region size in bytes (the paper sweeps 4 MB – 128 MB).
    pub region_bytes: u64,
    /// Histogram construction parameters.
    pub histogram: HistogramConfig,
    /// Build a per-region bitmap index?
    pub build_index: bool,
    /// Bitmap binning parameters.
    pub binning: BinningConfig,
    /// Build a value-sorted replica?
    pub build_sorted: bool,
    /// User attributes to attach.
    pub attrs: BTreeMap<String, MetaValue>,
}

impl Default for ImportOptions {
    fn default() -> Self {
        Self {
            region_bytes: 1 << 20,
            histogram: HistogramConfig::default(),
            build_index: false,
            binning: BinningConfig::default(),
            build_sorted: false,
            attrs: BTreeMap::new(),
        }
    }
}

/// What an import produced (sizes feed the E6 overhead experiment).
#[derive(Debug, Clone, Default)]
pub struct ImportReport {
    /// The new object's id.
    pub object: ObjectId,
    /// Number of regions created.
    pub regions: u32,
    /// Data bytes written.
    pub data_bytes: u64,
    /// Serialized index bytes written (0 when no index).
    pub index_bytes: u64,
    /// Sorted-replica bytes (0 when none).
    pub sorted_bytes: u64,
    /// Histogram metadata bytes.
    pub histogram_bytes: u64,
}

/// The assembled object-centric data management system.
#[derive(Debug)]
pub struct Odms {
    store: Arc<ObjectStore>,
    meta: Arc<MetadataService>,
}

impl Odms {
    /// A new system with `num_osts` simulated storage targets.
    pub fn new(num_osts: u32) -> Self {
        Self { store: Arc::new(ObjectStore::new(num_osts)), meta: Arc::new(MetadataService::new()) }
    }

    /// The object store.
    pub fn store(&self) -> &Arc<ObjectStore> {
        &self.store
    }

    /// The metadata service.
    pub fn meta(&self) -> &Arc<MetadataService> {
        &self.meta
    }

    /// Create a container.
    pub fn create_container(&self, name: &str) -> ContainerId {
        self.meta.create_container(name)
    }

    /// Import a 1-D array as a new object (the PDC ingest pipeline).
    pub fn import_array(
        &self,
        container: ContainerId,
        name: &str,
        data: TypedVec,
        opts: &ImportOptions,
    ) -> PdcResult<ImportReport> {
        let n = data.len() as u64;
        self.import_array_nd(container, name, data, pdc_types::Shape::one_d(n), opts)
    }

    /// Import an N-dimensional array (row-major element order) as a new
    /// object. Regions partition the linearized element space — PDC's
    /// regions are storage units, not tiles — while the shape drives
    /// spatial constraints (`PDCquery_set_region`) and dimension checks
    /// for multi-object queries.
    pub fn import_array_nd(
        &self,
        container: ContainerId,
        name: &str,
        data: TypedVec,
        shape: pdc_types::Shape,
        opts: &ImportOptions,
    ) -> PdcResult<ImportReport> {
        if shape.num_elements() != data.len() as u64 {
            return Err(pdc_types::PdcError::InvalidQuery(format!(
                "shape {:?} does not match {} elements",
                shape.0,
                data.len()
            )));
        }
        let id = self.meta.alloc_id();
        let elem_bytes = data.pdc_type().size_bytes();
        let region_elems = (opts.region_bytes / elem_bytes).max(1);

        let index_object = opts.build_index.then(|| self.meta.alloc_id());
        let meta = ObjectMeta {
            id,
            container,
            name: name.to_string(),
            pdc_type: data.pdc_type(),
            shape,
            region_elems,
            attrs: opts.attrs.clone(),
            index_object,
            has_sorted_replica: opts.build_sorted,
        };
        let regions = meta.regions();
        let mut report = ImportReport {
            object: id,
            regions: regions.len() as u32,
            ..Default::default()
        };

        // Sorted replica is built from the whole array before it is carved
        // into regions (one global sort, as the paper's reorganization).
        let values_f64: Vec<f64> = data.to_f64_vec();
        if opts.build_sorted {
            let replica = SortedReplica::build(&values_f64, region_elems);
            report.sorted_bytes = replica.size_bytes(elem_bytes);
            self.meta.set_sorted_replica(id, replica);
        }

        let mut hists = Vec::with_capacity(regions.len());
        let mut index_sizes = Vec::new();
        for (i, span) in regions.iter().enumerate() {
            let rid = RegionId::new(id, i as u32);
            let payload = data.slice(span.offset as usize, span.len as usize);
            report.data_bytes += payload.size_bytes();
            let slice_f64 = &values_f64[span.offset as usize..span.end() as usize];

            // Automatic local histogram (Algorithm 1), per region.
            let hist = Histogram::build(slice_f64, &opts.histogram)
                .expect("non-empty region must yield a histogram");
            hists.push(hist);

            // Optional per-region bitmap index, serialized like an index
            // file and stored alongside the data.
            if let Some(idx_obj) = index_object {
                let domain = match data.pdc_type() {
                    pdc_types::PdcType::Float => ValueDomain::F32,
                    pdc_types::PdcType::Double => ValueDomain::F64,
                    _ => ValueDomain::Integer,
                };
                let index = BinnedBitmapIndex::build_with_domain(slice_f64, &opts.binning, domain)
                    .expect("non-empty region must yield an index");
                let bytes = index.to_bytes();
                index_sizes.push(bytes.len() as u64);
                report.index_bytes += bytes.len() as u64;
                self.store.put(
                    RegionId::new(idx_obj, i as u32),
                    StoredPayload::Raw(bytes),
                    StorageTier::Pfs,
                );
            }

            self.store.put(rid, StoredPayload::Typed(Arc::new(payload)), StorageTier::Pfs);
        }
        self.meta.set_region_histograms(id, hists);
        if index_object.is_some() {
            self.meta.set_index_sizes(id, index_sizes);
        }
        report.histogram_bytes = self.meta.histogram_metadata_bytes(id);
        self.meta.register_object(meta);
        Ok(report)
    }

    /// Read one region's typed payload (time-free; callers charge their
    /// own clocks via the cost model).
    pub fn read_region(&self, object: ObjectId, region: u32) -> PdcResult<Arc<TypedVec>> {
        self.store.get_typed(RegionId::new(object, region))
    }

    /// Read one region's serialized bitmap index.
    pub fn read_index_region(&self, data_object: ObjectId, region: u32) -> PdcResult<bytes::Bytes> {
        let meta = self.meta.get(data_object)?;
        let idx_obj = meta.index_object.ok_or_else(|| {
            pdc_types::PdcError::MissingPrerequisite(format!("index of {data_object}"))
        })?;
        self.store.get_raw(RegionId::new(idx_obj, region))
    }

    /// Rebuild one region's bitmap index from its (verified) data payload
    /// and store it back, replacing a copy that failed checksum or decode
    /// validation. The original binning configuration is not persisted, so
    /// the rebuild uses the default — any valid index yields exact
    /// answers, so query results are unaffected. Returns the serialized
    /// size of the rebuilt index (for cost charging).
    pub fn rebuild_index_region(&self, data_object: ObjectId, region: u32) -> PdcResult<u64> {
        let meta = self.meta.get(data_object)?;
        let idx_obj = meta.index_object.ok_or_else(|| {
            pdc_types::PdcError::MissingPrerequisite(format!("index of {data_object}"))
        })?;
        let payload = self.store.get_typed(RegionId::new(data_object, region))?;
        let values = payload.to_f64_vec();
        let domain = match meta.pdc_type {
            pdc_types::PdcType::Float => ValueDomain::F32,
            pdc_types::PdcType::Double => ValueDomain::F64,
            _ => ValueDomain::Integer,
        };
        let index = BinnedBitmapIndex::build_with_domain(&values, &BinningConfig::default(), domain)
            .ok_or_else(|| {
                pdc_types::PdcError::Codec(format!(
                    "cannot rebuild index for empty region {region} of {data_object}"
                ))
            })?;
        let bytes = index.to_bytes();
        let size = bytes.len() as u64;
        self.store.put(RegionId::new(idx_obj, region), StoredPayload::Raw(bytes), StorageTier::Pfs);
        self.meta.update_index_size(data_object, region, size)?;
        Ok(size)
    }

    /// Rebuild one region's local histogram from its data payload and
    /// re-register it (re-merging the object's global histogram),
    /// replacing a copy that failed [`Histogram::self_check`]. Uses the
    /// default histogram configuration — any valid histogram yields true
    /// upper bounds, so pruning stays exact. Returns the rebuilt
    /// histogram's metadata footprint in bytes.
    pub fn rebuild_region_histogram(&self, object: ObjectId, region: u32) -> PdcResult<u64> {
        let payload = self.store.get_typed(RegionId::new(object, region))?;
        let values = payload.to_f64_vec();
        let hist = Histogram::build(&values, &HistogramConfig::default()).ok_or_else(|| {
            pdc_types::PdcError::Codec(format!(
                "cannot rebuild histogram for empty region {region} of {object}"
            ))
        })?;
        let size = hist.size_bytes();
        self.meta.replace_region_histogram(object, region, hist)?;
        // Metadata-only mutation: no store write happens, so invalidate
        // epoch-keyed prune/plan caches explicitly.
        self.store.bump_epoch();
        Ok(size)
    }

    /// Rebuild an object's sorted replica from its stored regions,
    /// replacing a copy that failed [`SortedReplica::self_check`]. Returns
    /// the replica's storage footprint in bytes (for cost charging).
    pub fn rebuild_sorted_replica(&self, object: ObjectId) -> PdcResult<u64> {
        let meta = self.meta.get(object)?;
        if !meta.has_sorted_replica {
            return Err(pdc_types::PdcError::MissingPrerequisite(format!(
                "sorted replica of {object}"
            )));
        }
        let mut values = Vec::with_capacity(meta.num_elements() as usize);
        for r in 0..meta.num_regions() {
            let payload = self.read_region(object, r)?;
            payload.append_f64_to(&mut values);
        }
        let replica = SortedReplica::build(&values, meta.region_elems);
        let size = replica.size_bytes(meta.pdc_type.size_bytes());
        self.meta.set_sorted_replica(object, replica);
        // Metadata-only mutation (see rebuild_region_histogram).
        self.store.bump_epoch();
        Ok(size)
    }

    /// Remove one region from the system: the data payload plus the
    /// auxiliary structures derived from it (the serialized bitmap-index
    /// region). Quarantine marks are purged along with the payloads, so a
    /// corrupt region that is removed rather than repaired leaves no
    /// stale integrity state behind. Returns whether the data region
    /// existed.
    pub fn remove_region(&self, object: ObjectId, region: u32) -> PdcResult<bool> {
        let meta = self.meta.get(object)?;
        let removed = self.store.remove(RegionId::new(object, region));
        if let Some(idx_obj) = meta.index_object {
            self.store.remove(RegionId::new(idx_obj, region));
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vpic_like(n: usize) -> TypedVec {
        TypedVec::Float((0..n).map(|i| ((i * 13) % 997) as f32 / 100.0).collect())
    }

    fn system_with_import(n: usize, opts: &ImportOptions) -> (Odms, ImportReport) {
        let odms = Odms::new(8);
        let c = odms.create_container("test");
        let report = odms.import_array(c, "energy", vpic_like(n), opts).unwrap();
        (odms, report)
    }

    #[test]
    fn import_partitions_and_stores_regions() {
        let opts = ImportOptions { region_bytes: 4096, ..Default::default() }; // 1024 f32
        let (odms, report) = system_with_import(5000, &opts);
        assert_eq!(report.regions, 5);
        assert_eq!(report.data_bytes, 20_000);
        let meta = odms.meta().get(report.object).unwrap();
        assert_eq!(meta.region_elems, 1024);
        // all regions retrievable, with correct sizes
        for r in 0..report.regions {
            let payload = odms.read_region(report.object, r).unwrap();
            let expect = meta.region_span(r).len;
            assert_eq!(payload.len() as u64, expect);
        }
    }

    #[test]
    fn import_builds_histograms_automatically() {
        let opts = ImportOptions { region_bytes: 4096, ..Default::default() };
        let (odms, report) = system_with_import(5000, &opts);
        let hists = odms.meta().region_histograms(report.object).unwrap();
        assert_eq!(hists.len(), 5);
        let global = odms.meta().global_histogram(report.object).unwrap();
        assert_eq!(global.total(), 5000);
        assert!(report.histogram_bytes > 0);
    }

    #[test]
    fn import_with_index_builds_readable_index_regions() {
        let opts =
            ImportOptions { region_bytes: 4096, build_index: true, ..Default::default() };
        let (odms, report) = system_with_import(5000, &opts);
        assert!(report.index_bytes > 0);
        let sizes = odms.meta().index_sizes(report.object).unwrap();
        assert_eq!(sizes.len(), 5);
        // read an index region back and deserialize it
        let bytes = odms.read_index_region(report.object, 2).unwrap();
        assert_eq!(bytes.len() as u64, sizes[2]);
        let idx = BinnedBitmapIndex::from_bytes(&bytes).unwrap();
        let meta = odms.meta().get(report.object).unwrap();
        assert_eq!(idx.num_elements(), meta.region_span(2).len);
    }

    #[test]
    fn import_without_index_refuses_index_reads() {
        let opts = ImportOptions { region_bytes: 4096, ..Default::default() };
        let (odms, report) = system_with_import(1000, &opts);
        assert!(odms.read_index_region(report.object, 0).is_err());
    }

    #[test]
    fn import_with_sorted_replica() {
        let opts =
            ImportOptions { region_bytes: 4096, build_sorted: true, ..Default::default() };
        let (odms, report) = system_with_import(5000, &opts);
        assert!(report.sorted_bytes > 0);
        let replica = odms.meta().sorted_replica(report.object).unwrap();
        assert_eq!(replica.len(), 5000);
        assert!(replica.keys().windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn name_lookup_after_import() {
        let opts = ImportOptions::default();
        let (odms, report) = system_with_import(100, &opts);
        assert_eq!(odms.meta().lookup_name("energy").unwrap().id, report.object);
    }

    #[test]
    fn region_payloads_reassemble_original() {
        let opts = ImportOptions { region_bytes: 1024, ..Default::default() };
        let data = vpic_like(3000);
        let odms = Odms::new(4);
        let c = odms.create_container("t");
        let report = odms.import_array(c, "x", data.clone(), &opts).unwrap();
        let meta = odms.meta().get(report.object).unwrap();
        let mut reassembled = TypedVec::empty(data.pdc_type());
        for r in 0..meta.num_regions() {
            let payload = odms.read_region(report.object, r).unwrap();
            reassembled.extend_from_range(&payload, 0..payload.len()).unwrap();
        }
        assert_eq!(reassembled, data);
    }

    #[test]
    fn rebuild_index_region_replaces_corrupt_copy() {
        let opts =
            ImportOptions { region_bytes: 4096, build_index: true, ..Default::default() };
        let (odms, report) = system_with_import(5000, &opts);
        let meta = odms.meta().get(report.object).unwrap();
        let idx_obj = meta.index_object.unwrap();
        let irid = RegionId::new(idx_obj, 1);
        assert!(odms.store().corrupt(irid, 42).unwrap());
        assert!(odms.read_index_region(report.object, 1).is_err());
        let size = odms.rebuild_index_region(report.object, 1).unwrap();
        assert!(size > 0);
        assert_eq!(odms.meta().index_sizes(report.object).unwrap()[1], size);
        let bytes = odms.read_index_region(report.object, 1).unwrap();
        let idx = BinnedBitmapIndex::from_bytes(&bytes).unwrap();
        assert_eq!(idx.num_elements(), meta.region_span(1).len);
        assert!(!odms.store().is_quarantined(irid));
    }

    #[test]
    fn rebuild_region_histogram_restores_valid_state() {
        let opts = ImportOptions { region_bytes: 4096, ..Default::default() };
        let (odms, report) = system_with_import(5000, &opts);
        let meta = odms.meta().get(report.object).unwrap();
        let hists = odms.meta().region_histograms(report.object).unwrap();
        let bad = hists[2].corrupted_copy(7);
        assert!(!bad.self_check(meta.region_span(2).len));
        odms.meta().replace_region_histogram(report.object, 2, bad).unwrap();
        odms.rebuild_region_histogram(report.object, 2).unwrap();
        let hists = odms.meta().region_histograms(report.object).unwrap();
        assert!(hists[2].self_check(meta.region_span(2).len));
        // global histogram re-merged to the true total
        assert_eq!(odms.meta().global_histogram(report.object).unwrap().total(), 5000);
    }

    #[test]
    fn rebuild_sorted_replica_from_stored_regions() {
        let opts =
            ImportOptions { region_bytes: 4096, build_sorted: true, ..Default::default() };
        let (odms, report) = system_with_import(5000, &opts);
        let good = odms.meta().sorted_replica(report.object).unwrap();
        odms.meta().set_sorted_replica(report.object, good.corrupted_copy(3));
        assert!(!odms.meta().sorted_replica(report.object).unwrap().self_check(5000));
        let size = odms.rebuild_sorted_replica(report.object).unwrap();
        assert!(size > 0);
        let rebuilt = odms.meta().sorted_replica(report.object).unwrap();
        assert!(rebuilt.self_check(5000));
        assert_eq!(*rebuilt, *good);
    }

    #[test]
    fn remove_region_purges_aux_and_quarantine() {
        let opts =
            ImportOptions { region_bytes: 4096, build_index: true, ..Default::default() };
        let (odms, report) = system_with_import(5000, &opts);
        let meta = odms.meta().get(report.object).unwrap();
        let idx_obj = meta.index_object.unwrap();
        let rid = RegionId::new(report.object, 3);
        assert!(odms.store().corrupt(rid, 11).unwrap());
        let _ = odms.store().get(rid); // quarantines
        assert!(odms.store().is_quarantined(rid));
        assert!(odms.remove_region(report.object, 3).unwrap());
        assert!(!odms.store().is_quarantined(rid));
        assert!(odms.store().get(rid).is_err());
        assert!(odms.store().get_raw(RegionId::new(idx_obj, 3)).is_err());
        // removing again reports absence
        assert!(!odms.remove_region(report.object, 3).unwrap());
    }

    #[test]
    fn attrs_are_tag_queryable() {
        let odms = Odms::new(4);
        let c = odms.create_container("boss");
        let mut attrs = BTreeMap::new();
        attrs.insert("RADEG".to_string(), MetaValue::from(153.17));
        let opts = ImportOptions { attrs, ..Default::default() };
        let report = odms.import_array(c, "fiber-1", vpic_like(64), &opts).unwrap();
        let hits = odms.meta().query_tags(&[("RADEG", MetaValue::from(153.17))]);
        assert_eq!(hits, vec![report.object]);
    }
}
