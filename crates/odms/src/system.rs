//! The [`Odms`] facade: the assembled PDC substrate.
//!
//! Importing an array object performs PDC's ingest pipeline:
//!
//! 1. partition the array into regions of the configured size (§III-B);
//! 2. write each region's payload to the parallel-file-system tier;
//! 3. build each region's **local histogram** automatically ("a 'local'
//!    histogram is automatically generated for each data region when data
//!    is either produced within PDC or imported from an outside dataset")
//!    and fold them into the object's global histogram;
//! 4. optionally build the per-region **bitmap index** (serialized next to
//!    the data, like FastBit index files);
//! 5. optionally build the value-**sorted replica** ("we provide users the
//!    option to specify hints on how data should be organized").

use crate::meta::{MetaValue, ObjectMeta};
use crate::service::MetadataService;
use parking_lot::RwLock;
use pdc_bitmap::{BinnedBitmapIndex, BinningConfig};
use pdc_bitmap::index::ValueDomain;
use pdc_directory::{DirectoryConfig, JointGrid, RegionDirectory};
use pdc_histogram::{Histogram, HistogramConfig};
use pdc_sorted::SortedReplica;
use pdc_storage::{ObjectStore, StorageTier, StoredPayload};
use pdc_types::{ContainerId, ObjectId, PdcResult, RegionId, TypedVec};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Options controlling an import.
#[derive(Debug, Clone)]
pub struct ImportOptions {
    /// Region size in bytes (the paper sweeps 4 MB – 128 MB).
    pub region_bytes: u64,
    /// Histogram construction parameters.
    pub histogram: HistogramConfig,
    /// Build a per-region bitmap index?
    pub build_index: bool,
    /// Bitmap binning parameters.
    pub binning: BinningConfig,
    /// Build a value-sorted replica?
    pub build_sorted: bool,
    /// User attributes to attach.
    pub attrs: BTreeMap<String, MetaValue>,
}

impl Default for ImportOptions {
    fn default() -> Self {
        Self {
            region_bytes: 1 << 20,
            histogram: HistogramConfig::default(),
            build_index: false,
            binning: BinningConfig::default(),
            build_sorted: false,
            attrs: BTreeMap::new(),
        }
    }
}

/// What an import produced (sizes feed the E6 overhead experiment).
#[derive(Debug, Clone, Default)]
pub struct ImportReport {
    /// The new object's id.
    pub object: ObjectId,
    /// Number of regions created.
    pub regions: u32,
    /// Data bytes written.
    pub data_bytes: u64,
    /// Serialized index bytes written (0 when no index).
    pub index_bytes: u64,
    /// Sorted-replica bytes (0 when none).
    pub sorted_bytes: u64,
    /// Histogram metadata bytes.
    pub histogram_bytes: u64,
    /// Region-directory metadata bytes.
    pub directory_bytes: u64,
}

/// What one streaming append did (the ingest-side counterpart of
/// [`ImportReport`]).
#[derive(Debug, Clone, Default)]
pub struct AppendReport {
    /// The object appended to.
    pub object: ObjectId,
    /// Elements appended in this call.
    pub appended_elems: u64,
    /// The object's total element count after the append.
    pub total_elems: u64,
    /// Data bytes written (tail fill plus new regions).
    pub data_bytes: u64,
    /// The previously partial tail region that received a fill, if any.
    pub filled_tail: Option<u32>,
    /// Indices of freshly created regions.
    pub new_regions: Vec<u32>,
    /// Regions sealed by this append (they reached `region_elems`).
    pub sealed_regions: Vec<u32>,
    /// Index regions whose bitmap rebuild was deferred.
    pub pending_index_regions: Vec<u32>,
    /// Whether the sorted replica went stale (deferred rebuild queued).
    pub sorted_stale: bool,
}

/// What one deferred-maintenance pass rebuilt.
#[derive(Debug, Clone, Default)]
pub struct MaintenanceReport {
    /// Bitmap-index regions rebuilt.
    pub index_regions_rebuilt: u32,
    /// Sorted replicas rebuilt.
    pub sorted_replicas_rebuilt: u32,
    /// Total bytes written by the rebuilds.
    pub bytes_written: u64,
}

/// Auxiliary structures an append left stale, awaiting deferred rebuild.
#[derive(Debug, Default, Clone)]
struct PendingAux {
    index_regions: BTreeSet<u32>,
    sorted_stale: bool,
}

/// One registered tenant of the multi-tenant query service: the durable
/// identity + scheduling parameters the service loop reads when it is
/// configured from an [`Odms`]. Budgets are stored in simulated
/// nanoseconds (the unit of `pdc_storage::SimDuration`) so the record
/// stays free of the storage crate's clock types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantRecord {
    /// Dense registry index, assigned at first registration.
    pub id: u32,
    /// Unique tenant name (the registry upserts by name).
    pub name: String,
    /// Weighted-fair share (deficit-round-robin weight, ≥ 1).
    pub weight: u32,
    /// Admission budget: max in-flight estimated simulated cost, ns.
    pub cost_budget_ns: u64,
    /// Deferral queue capacity; an arrival past a full deferral queue is
    /// rejected.
    pub queue_cap: usize,
}

/// The assembled object-centric data management system.
#[derive(Debug)]
pub struct Odms {
    store: Arc<ObjectStore>,
    meta: Arc<MetadataService>,
    /// Deferred aux-maintenance queue: per object, the index regions and
    /// sorted replicas left stale by streaming appends. Drained by
    /// [`Odms::run_deferred_maintenance`]; queries stay correct in the
    /// meantime because probes fall back to verified scans for missing or
    /// wrong-extent index regions and the planner treats a stale sorted
    /// replica as unavailable.
    pending: RwLock<BTreeMap<ObjectId, PendingAux>>,
    /// The multi-tenant registry, ordered by registration (dense ids).
    tenants: RwLock<Vec<TenantRecord>>,
}

impl Odms {
    /// A new system with `num_osts` simulated storage targets.
    pub fn new(num_osts: u32) -> Self {
        Self {
            store: Arc::new(ObjectStore::new(num_osts)),
            meta: Arc::new(MetadataService::new()),
            pending: RwLock::new(BTreeMap::new()),
            tenants: RwLock::new(Vec::new()),
        }
    }

    /// Register (or update) a tenant by name and return its dense id.
    /// Re-registering an existing name updates the scheduling parameters
    /// in place and keeps the original id — tenants are durable
    /// identities, not per-connection state.
    pub fn register_tenant(
        &self,
        name: &str,
        weight: u32,
        cost_budget_ns: u64,
        queue_cap: usize,
    ) -> u32 {
        let mut ts = self.tenants.write();
        if let Some(t) = ts.iter_mut().find(|t| t.name == name) {
            t.weight = weight.max(1);
            t.cost_budget_ns = cost_budget_ns;
            t.queue_cap = queue_cap;
            return t.id;
        }
        let id = ts.len() as u32;
        ts.push(TenantRecord {
            id,
            name: name.to_string(),
            weight: weight.max(1),
            cost_budget_ns,
            queue_cap,
        });
        id
    }

    /// Look up a tenant record by name.
    pub fn tenant(&self, name: &str) -> Option<TenantRecord> {
        self.tenants.read().iter().find(|t| t.name == name).cloned()
    }

    /// All registered tenants, in id order.
    pub fn tenants(&self) -> Vec<TenantRecord> {
        self.tenants.read().clone()
    }

    /// The object store.
    pub fn store(&self) -> &Arc<ObjectStore> {
        &self.store
    }

    /// The metadata service.
    pub fn meta(&self) -> &Arc<MetadataService> {
        &self.meta
    }

    /// Create a container.
    pub fn create_container(&self, name: &str) -> ContainerId {
        self.meta.create_container(name)
    }

    /// Import a 1-D array as a new object (the PDC ingest pipeline).
    pub fn import_array(
        &self,
        container: ContainerId,
        name: &str,
        data: TypedVec,
        opts: &ImportOptions,
    ) -> PdcResult<ImportReport> {
        let n = data.len() as u64;
        self.import_array_nd(container, name, data, pdc_types::Shape::one_d(n), opts)
    }

    /// Import an N-dimensional array (row-major element order) as a new
    /// object. Regions partition the linearized element space — PDC's
    /// regions are storage units, not tiles — while the shape drives
    /// spatial constraints (`PDCquery_set_region`) and dimension checks
    /// for multi-object queries.
    pub fn import_array_nd(
        &self,
        container: ContainerId,
        name: &str,
        data: TypedVec,
        shape: pdc_types::Shape,
        opts: &ImportOptions,
    ) -> PdcResult<ImportReport> {
        if shape.num_elements() != data.len() as u64 {
            return Err(pdc_types::PdcError::InvalidQuery(format!(
                "shape {:?} does not match {} elements",
                shape.0,
                data.len()
            )));
        }
        let id = self.meta.alloc_id();
        let elem_bytes = data.pdc_type().size_bytes();
        let region_elems = (opts.region_bytes / elem_bytes).max(1);

        let index_object = opts.build_index.then(|| self.meta.alloc_id());
        let meta = ObjectMeta {
            id,
            container,
            name: name.to_string(),
            pdc_type: data.pdc_type(),
            shape,
            region_elems,
            attrs: opts.attrs.clone(),
            index_object,
            has_sorted_replica: opts.build_sorted,
        };
        let regions = meta.regions();
        let mut report = ImportReport {
            object: id,
            regions: regions.len() as u32,
            ..Default::default()
        };

        // Sorted replica is built from the whole array before it is carved
        // into regions (one global sort, as the paper's reorganization).
        let values_f64: Vec<f64> = data.to_f64_vec();
        if opts.build_sorted {
            let replica = SortedReplica::build(&values_f64, region_elems);
            report.sorted_bytes = replica.size_bytes(elem_bytes);
            self.meta.set_sorted_replica(id, replica);
        }

        let mut hists = Vec::with_capacity(regions.len());
        let mut index_sizes = Vec::new();
        for (i, span) in regions.iter().enumerate() {
            let rid = RegionId::new(id, i as u32);
            let payload = data.slice(span.offset as usize, span.len as usize);
            report.data_bytes += payload.size_bytes();
            let slice_f64 = &values_f64[span.offset as usize..span.end() as usize];

            // Automatic local histogram (Algorithm 1), per region.
            let hist = Histogram::build(slice_f64, &opts.histogram)
                .expect("non-empty region must yield a histogram");
            hists.push(hist);

            // Optional per-region bitmap index, serialized like an index
            // file and stored alongside the data.
            if let Some(idx_obj) = index_object {
                let domain = match data.pdc_type() {
                    pdc_types::PdcType::Float => ValueDomain::F32,
                    pdc_types::PdcType::Double => ValueDomain::F64,
                    _ => ValueDomain::Integer,
                };
                let index = BinnedBitmapIndex::build_with_domain(slice_f64, &opts.binning, domain)
                    .expect("non-empty region must yield an index");
                let bytes = index.to_bytes();
                index_sizes.push(bytes.len() as u64);
                report.index_bytes += bytes.len() as u64;
                let idx_rid = RegionId::new(idx_obj, i as u32);
                self.store.put(idx_rid, StoredPayload::Raw(bytes), StorageTier::Pfs);
                // Index regions are immutable blobs — replaced whole on
                // rebuild, dropped on append — so they are sealed (and
                // thereby demotable) from birth.
                self.store.seal(idx_rid)?;
            }

            self.store.put(rid, StoredPayload::Typed(Arc::new(payload)), StorageTier::Pfs);
            // Every region at its full configured extent is sealed against
            // appends; only a partial tail stays open for streaming ingest.
            if span.len == region_elems {
                self.store.seal(rid)?;
            }
        }
        // Region directory: hierarchical bins over the per-region value
        // bounds the local histograms just observed — built at import
        // time like the histograms themselves, before the object's
        // registration makes it queryable.
        let dir = RegionDirectory::from_bounds(
            DirectoryConfig::default(),
            &hists.iter().map(|h| (h.min(), h.max())).collect::<Vec<_>>(),
        );
        report.directory_bytes = dir.size_bytes();
        self.meta.set_directory(id, dir);
        self.meta.set_region_histograms(id, hists);
        if index_object.is_some() {
            self.meta.set_index_sizes(id, index_sizes);
        }
        report.histogram_bytes = self.meta.histogram_metadata_bytes(id);
        self.meta.register_object(meta);
        Ok(report)
    }

    /// Append elements to the end of a 1-D object (streaming ingest).
    ///
    /// The delta splits into a **tail fill** (extending the last partial
    /// region's payload in place — the prefix is never rewritten) and zero
    /// or more **whole new regions**. Each appended slice gets a fresh
    /// Algorithm 1 delta histogram; the tail region's local histogram
    /// becomes `old ⊕ delta` and the global histogram absorbs every delta
    /// via [`MetadataService::extend_histograms`] — incremental merges
    /// only, never a from-scratch rebuild. Regions that reach their full
    /// `region_elems` extent are sealed.
    ///
    /// Auxiliary structures are maintained *deferred*: the (now stale)
    /// tail bitmap-index region is dropped, appended regions get no index
    /// yet, and the sorted replica is left at its pre-append extent. All
    /// three are queued for [`Odms::run_deferred_maintenance`]; until it
    /// runs, query correctness rests on probe→scan fallback and on the
    /// planner treating a wrong-extent sorted replica as unavailable.
    ///
    /// Ordering matters for in-flight queries: payloads land first, then
    /// histogram/index-size metadata, and the grown `ObjectMeta` is
    /// re-registered **last** — registration is the linearization point at
    /// which the appended elements become visible to new plans. A final
    /// epoch bump invalidates every plan/artifact cache.
    pub fn append_array(&self, object: ObjectId, delta: &TypedVec) -> PdcResult<AppendReport> {
        let meta = self.meta.get(object)?;
        if meta.shape.0.len() != 1 {
            return Err(pdc_types::PdcError::InvalidQuery(format!(
                "append requires a 1-D object; {object} has shape {:?}",
                meta.shape.0
            )));
        }
        if delta.pdc_type() != meta.pdc_type {
            return Err(pdc_types::PdcError::TypeMismatch {
                expected: meta.pdc_type,
                got: delta.pdc_type(),
            });
        }
        let old_n = meta.num_elements();
        let re = meta.region_elems;
        let added = delta.len() as u64;
        let mut report = AppendReport {
            object,
            appended_elems: added,
            total_elems: old_n + added,
            ..Default::default()
        };
        if added == 0 {
            return Ok(report);
        }
        let delta_f64 = delta.to_f64_vec();
        let hist_cfg = HistogramConfig::default();

        // 1. Payloads: tail fill first, then whole new regions.
        let mut consumed = 0u64;
        let mut tail_delta_hist: Option<Histogram> = None;
        if old_n % re != 0 {
            let tail_idx = meta.num_regions() - 1;
            let fill = (re - old_n % re).min(added);
            let rid = RegionId::new(object, tail_idx);
            let slice = delta.slice(0, fill as usize);
            report.data_bytes += slice.size_bytes();
            self.store.append_typed(rid, &slice)?;
            tail_delta_hist = Some(
                Histogram::build(&delta_f64[..fill as usize], &hist_cfg)
                    .expect("non-empty fill must yield a histogram"),
            );
            if (old_n + fill) % re == 0 {
                self.store.seal(rid)?;
                report.sealed_regions.push(tail_idx);
            }
            report.filled_tail = Some(tail_idx);
            consumed = fill;
        }
        let mut new_hists = Vec::new();
        while consumed < added {
            let take = re.min(added - consumed);
            let region_idx = ((old_n + consumed) / re) as u32;
            let rid = RegionId::new(object, region_idx);
            let slice = delta.slice(consumed as usize, take as usize);
            report.data_bytes += slice.size_bytes();
            new_hists.push(
                Histogram::build(&delta_f64[consumed as usize..(consumed + take) as usize], &hist_cfg)
                    .expect("non-empty region must yield a histogram"),
            );
            self.store.put(rid, StoredPayload::Typed(Arc::new(slice)), StorageTier::Pfs);
            if take == re {
                self.store.seal(rid)?;
                report.sealed_regions.push(region_idx);
            }
            report.new_regions.push(region_idx);
            consumed += take;
        }

        // 2. Histogram metadata: replace the tail's local histogram with
        // `old ⊕ delta` and fold every delta into the global, in region
        // order — exactly the fold `merge_all` would perform.
        let mut deltas = Vec::new();
        let tail_replacement = match (&tail_delta_hist, report.filled_tail) {
            (Some(dh), Some(tail_idx)) => {
                let old_hists = self.meta.region_histograms(object)?;
                deltas.push(dh.clone());
                Some((tail_idx, old_hists[tail_idx as usize].merged(dh)))
            }
            _ => None,
        };
        // Region directory, maintained incrementally like the histograms:
        // the filled tail's bounds widen to its merged histogram's, and
        // each appended region enters as a fresh entry — never a rebuild.
        if let Some(dir) = self.meta.directory(object) {
            let mut d = (*dir).clone();
            if let Some((tail_idx, merged)) = &tail_replacement {
                d.update_region(*tail_idx, merged.min(), merged.max());
            }
            for h in &new_hists {
                d.push_region(h.min(), h.max());
            }
            self.meta.set_directory(object, d);
        }
        deltas.extend(new_hists.iter().cloned());
        self.meta.extend_histograms(object, tail_replacement, new_hists, deltas)?;

        // Registered joint grids involving this object extend to the new
        // common coordinate extent `min(extent(a), extent(b))` — the
        // appended payloads are already stored, so the pair values are
        // readable even though the grown meta is not yet published.
        for grid in self.meta.joint_grids_for(object) {
            let (a, b) = grid.pair();
            let extent = |o: ObjectId| -> PdcResult<u64> {
                Ok(if o == object { old_n + added } else { self.meta.get(o)?.num_elements() })
            };
            let target = extent(a)?.min(extent(b)?);
            if target > grid.covered() {
                let av = self.read_f64_range(a, grid.covered(), target)?;
                let bv = self.read_f64_range(b, grid.covered(), target)?;
                let mut g = (*grid).clone();
                g.extend(&av, &bv);
                self.meta.set_joint_grid(g);
            }
        }

        // 3. Deferred aux maintenance bookkeeping.
        if let Some(idx_obj) = meta.index_object {
            if let Some(tail_idx) = report.filled_tail {
                // The stored tail index covers the pre-append extent; drop
                // it so probes fall back to verified scans until rebuilt.
                self.store.remove(RegionId::new(idx_obj, tail_idx));
                report.pending_index_regions.push(tail_idx);
            }
            report.pending_index_regions.extend(report.new_regions.iter().copied());
            let mut sizes = self.meta.index_sizes(object)?.as_ref().clone();
            if let Some(tail_idx) = report.filled_tail {
                sizes[tail_idx as usize] = 0;
            }
            sizes.resize((old_n + added).div_ceil(re) as usize, 0);
            self.meta.set_index_sizes(object, sizes);
        }
        report.sorted_stale = meta.has_sorted_replica;
        {
            let mut pend = self.pending.write();
            let entry = pend.entry(object).or_default();
            entry.index_regions.extend(report.pending_index_regions.iter().copied());
            entry.sorted_stale |= report.sorted_stale;
        }

        // 4. Publish the grown extent, then invalidate caches.
        let mut new_meta = (*meta).clone();
        new_meta.shape = pdc_types::Shape::one_d(old_n + added);
        self.meta.register_object(new_meta);
        self.store.bump_epoch();
        Ok(report)
    }

    /// Drain the deferred-maintenance queue: rebuild every stale bitmap
    /// index region and sorted replica left behind by streaming appends.
    /// Idempotent with the lazy probe-time rebuilds — a region already
    /// rebuilt on first touch is simply rebuilt to the same bytes.
    pub fn run_deferred_maintenance(&self) -> PdcResult<MaintenanceReport> {
        let drained: Vec<(ObjectId, PendingAux)> = {
            let mut pend = self.pending.write();
            std::mem::take(&mut *pend).into_iter().collect()
        };
        let mut report = MaintenanceReport::default();
        for (object, aux) in drained {
            for region in aux.index_regions {
                report.bytes_written += self.rebuild_index_region(object, region)?;
                report.index_regions_rebuilt += 1;
            }
            if aux.sorted_stale {
                report.bytes_written += self.rebuild_sorted_replica(object)?;
                report.sorted_replicas_rebuilt += 1;
            }
        }
        Ok(report)
    }

    /// The deferred-maintenance queue as `(object, stale index regions,
    /// sorted replica stale)`, ordered by object id.
    pub fn pending_maintenance(&self) -> Vec<(ObjectId, Vec<u32>, bool)> {
        self.pending
            .read()
            .iter()
            .map(|(id, aux)| (*id, aux.index_regions.iter().copied().collect(), aux.sorted_stale))
            .collect()
    }

    /// Read one region's typed payload (time-free; callers charge their
    /// own clocks via the cost model).
    pub fn read_region(&self, object: ObjectId, region: u32) -> PdcResult<Arc<TypedVec>> {
        self.store.get_typed(RegionId::new(object, region))
    }

    /// Read one region's serialized bitmap index.
    pub fn read_index_region(&self, data_object: ObjectId, region: u32) -> PdcResult<bytes::Bytes> {
        let meta = self.meta.get(data_object)?;
        let idx_obj = meta.index_object.ok_or_else(|| {
            pdc_types::PdcError::MissingPrerequisite(format!("index of {data_object}"))
        })?;
        self.store.get_raw(RegionId::new(idx_obj, region))
    }

    /// Rebuild one region's bitmap index from its (verified) data payload
    /// and store it back, replacing a copy that failed checksum or decode
    /// validation. The original binning configuration is not persisted, so
    /// the rebuild uses the default — any valid index yields exact
    /// answers, so query results are unaffected. Returns the serialized
    /// size of the rebuilt index (for cost charging).
    pub fn rebuild_index_region(&self, data_object: ObjectId, region: u32) -> PdcResult<u64> {
        let meta = self.meta.get(data_object)?;
        let idx_obj = meta.index_object.ok_or_else(|| {
            pdc_types::PdcError::MissingPrerequisite(format!("index of {data_object}"))
        })?;
        let payload = self.store.get_typed(RegionId::new(data_object, region))?;
        let values = payload.to_f64_vec();
        let domain = match meta.pdc_type {
            pdc_types::PdcType::Float => ValueDomain::F32,
            pdc_types::PdcType::Double => ValueDomain::F64,
            _ => ValueDomain::Integer,
        };
        let index = BinnedBitmapIndex::build_with_domain(&values, &BinningConfig::default(), domain)
            .ok_or_else(|| {
                pdc_types::PdcError::Codec(format!(
                    "cannot rebuild index for empty region {region} of {data_object}"
                ))
            })?;
        let bytes = index.to_bytes();
        let size = bytes.len() as u64;
        let idx_rid = RegionId::new(idx_obj, region);
        self.store.put(idx_rid, StoredPayload::Raw(bytes), StorageTier::Pfs);
        // `put` unseals its target; restore the immutable-blob seal so
        // the rebuilt index stays demotable under a memory budget.
        self.store.seal(idx_rid)?;
        self.meta.update_index_size(data_object, region, size)?;
        Ok(size)
    }

    /// Rebuild one region's local histogram from its data payload and
    /// re-register it (re-merging the object's global histogram),
    /// replacing a copy that failed [`Histogram::self_check`]. Uses the
    /// default histogram configuration — any valid histogram yields true
    /// upper bounds, so pruning stays exact. Returns the rebuilt
    /// histogram's metadata footprint in bytes.
    pub fn rebuild_region_histogram(&self, object: ObjectId, region: u32) -> PdcResult<u64> {
        let payload = self.store.get_typed(RegionId::new(object, region))?;
        let values = payload.to_f64_vec();
        let hist = Histogram::build(&values, &HistogramConfig::default()).ok_or_else(|| {
            pdc_types::PdcError::Codec(format!(
                "cannot rebuild histogram for empty region {region} of {object}"
            ))
        })?;
        let size = hist.size_bytes();
        self.meta.replace_region_histogram(object, region, hist)?;
        // Metadata-only mutation: no store write happens, so invalidate
        // epoch-keyed prune/plan caches explicitly.
        self.store.bump_epoch();
        Ok(size)
    }

    /// Rebuild an object's sorted replica from its stored regions,
    /// replacing a copy that failed [`SortedReplica::self_check`]. Returns
    /// the replica's storage footprint in bytes (for cost charging).
    pub fn rebuild_sorted_replica(&self, object: ObjectId) -> PdcResult<u64> {
        let meta = self.meta.get(object)?;
        if !meta.has_sorted_replica {
            return Err(pdc_types::PdcError::MissingPrerequisite(format!(
                "sorted replica of {object}"
            )));
        }
        let mut values = Vec::with_capacity(meta.num_elements() as usize);
        for r in 0..meta.num_regions() {
            let payload = self.read_region(object, r)?;
            payload.append_f64_to(&mut values);
        }
        let replica = SortedReplica::build(&values, meta.region_elems);
        let size = replica.size_bytes(meta.pdc_type.size_bytes());
        self.meta.set_sorted_replica(object, replica);
        // Metadata-only mutation (see rebuild_region_histogram).
        self.store.bump_epoch();
        Ok(size)
    }

    /// Read the f64-widened values at linear coordinates `[lo, hi)` of an
    /// object, spanning region payloads as needed.
    fn read_f64_range(&self, object: ObjectId, lo: u64, hi: u64) -> PdcResult<Vec<f64>> {
        let meta = self.meta.get(object)?;
        let re = meta.region_elems;
        let mut out = Vec::with_capacity((hi - lo) as usize);
        let mut at = lo;
        while at < hi {
            let r = (at / re) as u32;
            let payload = self.read_region(object, r)?;
            let vals = payload.to_f64_vec();
            let base = r as u64 * re;
            let start = (at - base) as usize;
            let end = ((hi - base).min(vals.len() as u64)) as usize;
            if end <= start {
                return Err(pdc_types::PdcError::InvalidQuery(format!(
                    "coordinate range [{lo}, {hi}) exceeds stored extent of {object}"
                )));
            }
            out.extend_from_slice(&vals[start..end]);
            at = base + end as u64;
        }
        Ok(out)
    }

    /// Register cross-variable joint bounds for the object pair `(a, b)`:
    /// build the per-region 2-D grid from the pair's stored payloads over
    /// their common coordinate extent and publish it to the metadata
    /// service. Requires aligned region grids (identical elements per
    /// region). Re-registering rebuilds from scratch. Returns the grid's
    /// metadata footprint in bytes.
    pub fn register_joint_pair(&self, a: ObjectId, b: ObjectId) -> PdcResult<u64> {
        if a == b {
            return Err(pdc_types::PdcError::InvalidQuery(format!(
                "joint pair requires two distinct objects, got ({a}, {a})"
            )));
        }
        let ma = self.meta.get(a)?;
        let mb = self.meta.get(b)?;
        if ma.region_elems != mb.region_elems {
            return Err(pdc_types::PdcError::InvalidQuery(format!(
                "joint pair requires aligned region grids: {} has {} elems/region, {} has {}",
                a, ma.region_elems, b, mb.region_elems
            )));
        }
        let target = ma.num_elements().min(mb.num_elements());
        let mut grid = JointGrid::new(a, b, ma.region_elems);
        // Stream region-sized chunks so the build never widens a region's
        // cell geometry from a partial extent unnecessarily.
        let mut at = 0u64;
        while at < target {
            let hi = (at + ma.region_elems).min(target);
            let av = self.read_f64_range(a, at, hi)?;
            let bv = self.read_f64_range(b, at, hi)?;
            grid.extend(&av, &bv);
            at = hi;
        }
        let size = grid.size_bytes();
        self.meta.set_joint_grid(grid);
        // Metadata-only mutation (see rebuild_region_histogram).
        self.store.bump_epoch();
        Ok(size)
    }

    /// Rebuild an object's region directory from its region histograms,
    /// replacing a copy that failed [`RegionDirectory::self_check`].
    /// Returns the directory's metadata footprint in bytes.
    pub fn rebuild_directory(&self, object: ObjectId) -> PdcResult<u64> {
        let hists = self.meta.region_histograms(object)?;
        let bounds: Vec<(f64, f64)> = hists.iter().map(|h| (h.min(), h.max())).collect();
        let dir = RegionDirectory::from_bounds(DirectoryConfig::default(), &bounds);
        let size = dir.size_bytes();
        self.meta.set_directory(object, dir);
        // Metadata-only mutation (see rebuild_region_histogram).
        self.store.bump_epoch();
        Ok(size)
    }

    /// Rebuild a registered joint grid from the pair's stored payloads,
    /// replacing a copy that failed [`JointGrid::self_check`]. Returns the
    /// grid's metadata footprint in bytes.
    pub fn rebuild_joint_grid(&self, a: ObjectId, b: ObjectId) -> PdcResult<u64> {
        if self.meta.joint_grid(a, b).is_none() {
            return Err(pdc_types::PdcError::MissingPrerequisite(format!(
                "joint grid of ({a}, {b})"
            )));
        }
        self.register_joint_pair(a, b)
    }

    /// Remove one region from the system: the data payload plus the
    /// auxiliary structures derived from it (the serialized bitmap-index
    /// region). Quarantine marks are purged along with the payloads, so a
    /// corrupt region that is removed rather than repaired leaves no
    /// stale integrity state behind. Returns whether the data region
    /// existed.
    pub fn remove_region(&self, object: ObjectId, region: u32) -> PdcResult<bool> {
        let meta = self.meta.get(object)?;
        let removed = self.store.remove(RegionId::new(object, region));
        if let Some(idx_obj) = meta.index_object {
            self.store.remove(RegionId::new(idx_obj, region));
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vpic_like(n: usize) -> TypedVec {
        TypedVec::Float((0..n).map(|i| ((i * 13) % 997) as f32 / 100.0).collect())
    }

    fn system_with_import(n: usize, opts: &ImportOptions) -> (Odms, ImportReport) {
        let odms = Odms::new(8);
        let c = odms.create_container("test");
        let report = odms.import_array(c, "energy", vpic_like(n), opts).unwrap();
        (odms, report)
    }

    #[test]
    fn import_partitions_and_stores_regions() {
        let opts = ImportOptions { region_bytes: 4096, ..Default::default() }; // 1024 f32
        let (odms, report) = system_with_import(5000, &opts);
        assert_eq!(report.regions, 5);
        assert_eq!(report.data_bytes, 20_000);
        let meta = odms.meta().get(report.object).unwrap();
        assert_eq!(meta.region_elems, 1024);
        // all regions retrievable, with correct sizes
        for r in 0..report.regions {
            let payload = odms.read_region(report.object, r).unwrap();
            let expect = meta.region_span(r).len;
            assert_eq!(payload.len() as u64, expect);
        }
    }

    #[test]
    fn import_builds_histograms_automatically() {
        let opts = ImportOptions { region_bytes: 4096, ..Default::default() };
        let (odms, report) = system_with_import(5000, &opts);
        let hists = odms.meta().region_histograms(report.object).unwrap();
        assert_eq!(hists.len(), 5);
        let global = odms.meta().global_histogram(report.object).unwrap();
        assert_eq!(global.total(), 5000);
        assert!(report.histogram_bytes > 0);
    }

    #[test]
    fn import_with_index_builds_readable_index_regions() {
        let opts =
            ImportOptions { region_bytes: 4096, build_index: true, ..Default::default() };
        let (odms, report) = system_with_import(5000, &opts);
        assert!(report.index_bytes > 0);
        let sizes = odms.meta().index_sizes(report.object).unwrap();
        assert_eq!(sizes.len(), 5);
        // read an index region back and deserialize it
        let bytes = odms.read_index_region(report.object, 2).unwrap();
        assert_eq!(bytes.len() as u64, sizes[2]);
        let idx = BinnedBitmapIndex::from_bytes(&bytes).unwrap();
        let meta = odms.meta().get(report.object).unwrap();
        assert_eq!(idx.num_elements(), meta.region_span(2).len);
    }

    #[test]
    fn import_without_index_refuses_index_reads() {
        let opts = ImportOptions { region_bytes: 4096, ..Default::default() };
        let (odms, report) = system_with_import(1000, &opts);
        assert!(odms.read_index_region(report.object, 0).is_err());
    }

    #[test]
    fn import_with_sorted_replica() {
        let opts =
            ImportOptions { region_bytes: 4096, build_sorted: true, ..Default::default() };
        let (odms, report) = system_with_import(5000, &opts);
        assert!(report.sorted_bytes > 0);
        let replica = odms.meta().sorted_replica(report.object).unwrap();
        assert_eq!(replica.len(), 5000);
        assert!(replica.keys().windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn name_lookup_after_import() {
        let opts = ImportOptions::default();
        let (odms, report) = system_with_import(100, &opts);
        assert_eq!(odms.meta().lookup_name("energy").unwrap().id, report.object);
    }

    #[test]
    fn region_payloads_reassemble_original() {
        let opts = ImportOptions { region_bytes: 1024, ..Default::default() };
        let data = vpic_like(3000);
        let odms = Odms::new(4);
        let c = odms.create_container("t");
        let report = odms.import_array(c, "x", data.clone(), &opts).unwrap();
        let meta = odms.meta().get(report.object).unwrap();
        let mut reassembled = TypedVec::empty(data.pdc_type());
        for r in 0..meta.num_regions() {
            let payload = odms.read_region(report.object, r).unwrap();
            reassembled.extend_from_range(&payload, 0..payload.len()).unwrap();
        }
        assert_eq!(reassembled, data);
    }

    #[test]
    fn rebuild_index_region_replaces_corrupt_copy() {
        let opts =
            ImportOptions { region_bytes: 4096, build_index: true, ..Default::default() };
        let (odms, report) = system_with_import(5000, &opts);
        let meta = odms.meta().get(report.object).unwrap();
        let idx_obj = meta.index_object.unwrap();
        let irid = RegionId::new(idx_obj, 1);
        assert!(odms.store().corrupt(irid, 42).unwrap());
        assert!(odms.read_index_region(report.object, 1).is_err());
        let size = odms.rebuild_index_region(report.object, 1).unwrap();
        assert!(size > 0);
        assert_eq!(odms.meta().index_sizes(report.object).unwrap()[1], size);
        let bytes = odms.read_index_region(report.object, 1).unwrap();
        let idx = BinnedBitmapIndex::from_bytes(&bytes).unwrap();
        assert_eq!(idx.num_elements(), meta.region_span(1).len);
        assert!(!odms.store().is_quarantined(irid));
    }

    #[test]
    fn rebuild_region_histogram_restores_valid_state() {
        let opts = ImportOptions { region_bytes: 4096, ..Default::default() };
        let (odms, report) = system_with_import(5000, &opts);
        let meta = odms.meta().get(report.object).unwrap();
        let hists = odms.meta().region_histograms(report.object).unwrap();
        let bad = hists[2].corrupted_copy(7);
        assert!(!bad.self_check(meta.region_span(2).len));
        odms.meta().replace_region_histogram(report.object, 2, bad).unwrap();
        odms.rebuild_region_histogram(report.object, 2).unwrap();
        let hists = odms.meta().region_histograms(report.object).unwrap();
        assert!(hists[2].self_check(meta.region_span(2).len));
        // global histogram re-merged to the true total
        assert_eq!(odms.meta().global_histogram(report.object).unwrap().total(), 5000);
    }

    #[test]
    fn rebuild_sorted_replica_from_stored_regions() {
        let opts =
            ImportOptions { region_bytes: 4096, build_sorted: true, ..Default::default() };
        let (odms, report) = system_with_import(5000, &opts);
        let good = odms.meta().sorted_replica(report.object).unwrap();
        odms.meta().set_sorted_replica(report.object, good.corrupted_copy(3));
        assert!(!odms.meta().sorted_replica(report.object).unwrap().self_check(5000));
        let size = odms.rebuild_sorted_replica(report.object).unwrap();
        assert!(size > 0);
        let rebuilt = odms.meta().sorted_replica(report.object).unwrap();
        assert!(rebuilt.self_check(5000));
        assert_eq!(*rebuilt, *good);
    }

    #[test]
    fn remove_region_purges_aux_and_quarantine() {
        let opts =
            ImportOptions { region_bytes: 4096, build_index: true, ..Default::default() };
        let (odms, report) = system_with_import(5000, &opts);
        let meta = odms.meta().get(report.object).unwrap();
        let idx_obj = meta.index_object.unwrap();
        let rid = RegionId::new(report.object, 3);
        assert!(odms.store().corrupt(rid, 11).unwrap());
        let _ = odms.store().get(rid); // quarantines
        assert!(odms.store().is_quarantined(rid));
        assert!(odms.remove_region(report.object, 3).unwrap());
        assert!(!odms.store().is_quarantined(rid));
        assert!(odms.store().get(rid).is_err());
        assert!(odms.store().get_raw(RegionId::new(idx_obj, 3)).is_err());
        // removing again reports absence
        assert!(!odms.remove_region(report.object, 3).unwrap());
    }

    #[test]
    fn import_seals_full_regions_leaves_tail_open() {
        let opts = ImportOptions { region_bytes: 4096, ..Default::default() }; // 1024 f32
        let (odms, report) = system_with_import(5000, &opts); // 4 full + 1 partial
        for r in 0..4 {
            assert!(odms.store().is_sealed(RegionId::new(report.object, r)), "region {r}");
        }
        assert!(!odms.store().is_sealed(RegionId::new(report.object, 4)), "tail must stay open");
    }

    #[test]
    fn append_fills_tail_and_creates_regions() {
        let opts = ImportOptions { region_bytes: 4096, ..Default::default() }; // 1024 f32
        let (odms, report) = system_with_import(2500, &opts); // regions: 1024,1024,452
        let delta = vpic_like(2000); // fill 572, then 1024, then 404
        let ar = odms.append_array(report.object, &delta).unwrap();
        assert_eq!(ar.appended_elems, 2000);
        assert_eq!(ar.total_elems, 4500);
        assert_eq!(ar.filled_tail, Some(2));
        assert_eq!(ar.new_regions, vec![3, 4]);
        assert_eq!(ar.sealed_regions, vec![2, 3]);
        let meta = odms.meta().get(report.object).unwrap();
        assert_eq!(meta.num_elements(), 4500);
        assert_eq!(meta.num_regions(), 5);
        // payloads reassemble the concatenation
        let mut reassembled = TypedVec::empty(meta.pdc_type);
        for r in 0..meta.num_regions() {
            let payload = odms.read_region(report.object, r).unwrap();
            reassembled.extend_from_range(&payload, 0..payload.len()).unwrap();
        }
        let mut expect = vpic_like(2500);
        expect.extend_from_range(&delta, 0..2000).unwrap();
        assert_eq!(reassembled, expect);
        // histograms: one per region, global totals the full extent and
        // matches a from-scratch merge bit-for-bit
        let hists = odms.meta().region_histograms(report.object).unwrap();
        assert_eq!(hists.len(), 5);
        let global = odms.meta().global_histogram(report.object).unwrap();
        assert_eq!(global.total(), 4500);
        assert_eq!(*global, pdc_histogram::merge_all(hists.iter()).unwrap());
    }

    #[test]
    fn append_defers_index_and_sorted_maintenance() {
        let opts = ImportOptions {
            region_bytes: 4096,
            build_index: true,
            build_sorted: true,
            ..Default::default()
        };
        let (odms, report) = system_with_import(2500, &opts);
        let meta = odms.meta().get(report.object).unwrap();
        let idx_obj = meta.index_object.unwrap();
        let ar = odms.append_array(report.object, &vpic_like(2000)).unwrap();
        assert_eq!(ar.pending_index_regions, vec![2, 3, 4]);
        assert!(ar.sorted_stale);
        // stale tail index dropped, new regions have none yet
        assert!(!odms.store().contains(RegionId::new(idx_obj, 2)));
        assert!(!odms.store().contains(RegionId::new(idx_obj, 3)));
        // sorted replica still at the pre-append extent
        assert_eq!(odms.meta().sorted_replica(report.object).unwrap().len(), 2500);
        assert_eq!(
            odms.pending_maintenance(),
            vec![(report.object, vec![2, 3, 4], true)]
        );
        // index-size slots cover the new region count
        assert_eq!(odms.meta().index_sizes(report.object).unwrap().len(), 5);

        let mr = odms.run_deferred_maintenance().unwrap();
        assert_eq!(mr.index_regions_rebuilt, 3);
        assert_eq!(mr.sorted_replicas_rebuilt, 1);
        assert!(mr.bytes_written > 0);
        assert!(odms.pending_maintenance().is_empty());
        // every region's index is readable and covers its current extent
        let meta = odms.meta().get(report.object).unwrap();
        for r in 0..meta.num_regions() {
            let bytes = odms.read_index_region(report.object, r).unwrap();
            let idx = BinnedBitmapIndex::from_bytes(&bytes).unwrap();
            assert_eq!(idx.num_elements(), meta.region_span(r).len, "region {r}");
        }
        let replica = odms.meta().sorted_replica(report.object).unwrap();
        assert_eq!(replica.len(), 4500);
        assert!(replica.self_check(4500));
    }

    #[test]
    fn append_bumps_epoch_and_rejects_bad_input() {
        let opts = ImportOptions { region_bytes: 4096, ..Default::default() };
        let (odms, report) = system_with_import(1000, &opts);
        let e0 = odms.store().epoch();
        odms.append_array(report.object, &vpic_like(10)).unwrap();
        assert!(odms.store().epoch() > e0, "append must bump the epoch");
        // empty delta is a no-op
        let e1 = odms.store().epoch();
        let ar = odms.append_array(report.object, &TypedVec::empty(pdc_types::PdcType::Float)).unwrap();
        assert_eq!(ar.appended_elems, 0);
        assert_eq!(odms.store().epoch(), e1);
        // type mismatch
        let ints: TypedVec = vec![1i32; 4].into();
        assert!(matches!(
            odms.append_array(report.object, &ints),
            Err(pdc_types::PdcError::TypeMismatch { .. })
        ));
        // N-d objects refuse appends
        let c = odms.create_container("nd");
        let nd = odms
            .import_array_nd(
                c,
                "grid",
                vpic_like(64),
                pdc_types::Shape(vec![8, 8]),
                &ImportOptions::default(),
            )
            .unwrap();
        assert!(matches!(
            odms.append_array(nd.object, &vpic_like(8)),
            Err(pdc_types::PdcError::InvalidQuery(_))
        ));
        // missing object
        assert!(odms.append_array(ObjectId(4040), &vpic_like(1)).is_err());
    }

    #[test]
    fn import_builds_directory_and_append_maintains_it() {
        let opts = ImportOptions { region_bytes: 4096, ..Default::default() }; // 1024 f32
        let (odms, report) = system_with_import(2500, &opts);
        assert!(report.directory_bytes > 0);
        let dir = odms.meta().directory(report.object).unwrap();
        assert!(dir.self_check(3));
        odms.append_array(report.object, &vpic_like(2000)).unwrap();
        let meta = odms.meta().get(report.object).unwrap();
        let dir = odms.meta().directory(report.object).unwrap();
        assert!(dir.self_check(meta.num_regions()));
        // Incrementally maintained bounds match the merged histograms.
        let hists = odms.meta().region_histograms(report.object).unwrap();
        for (r, h) in hists.iter().enumerate() {
            assert_eq!(dir.region_bounds(r as u32), Some((h.min(), h.max())), "region {r}");
        }
        // A from-scratch rebuild reproduces the incremental state exactly.
        assert!(odms.rebuild_directory(report.object).unwrap() > 0);
        assert_eq!(*odms.meta().directory(report.object).unwrap(), *dir);
    }

    #[test]
    fn joint_pair_registration_and_append_extension() {
        let opts = ImportOptions { region_bytes: 4096, ..Default::default() }; // 1024 f32
        let odms = Odms::new(4);
        let c = odms.create_container("t");
        let ra = odms.import_array(c, "a", vpic_like(2500), &opts).unwrap();
        let rb = odms.import_array(c, "b", vpic_like(2500), &opts).unwrap();
        assert!(odms.register_joint_pair(ra.object, rb.object).unwrap() > 0);
        let g = odms.meta().joint_grid(ra.object, rb.object).unwrap();
        assert_eq!(g.covered(), 2500);
        assert!(g.self_check());
        // Appending to `a` alone cannot extend past `b`'s extent.
        odms.append_array(ra.object, &vpic_like(700)).unwrap();
        assert_eq!(odms.meta().joint_grid(ra.object, rb.object).unwrap().covered(), 2500);
        // Appending to `b` extends the grid to the common extent.
        odms.append_array(rb.object, &vpic_like(1000)).unwrap();
        let g = odms.meta().joint_grid(ra.object, rb.object).unwrap();
        assert_eq!(g.covered(), 3200);
        assert!(g.self_check());
        // Misaligned region grids and self-pairs are refused.
        let bad_opts = ImportOptions { region_bytes: 1024, ..Default::default() };
        let rc = odms.import_array(c, "c", vpic_like(100), &bad_opts).unwrap();
        assert!(odms.register_joint_pair(ra.object, rc.object).is_err());
        assert!(odms.register_joint_pair(ra.object, ra.object).is_err());
        // Rebuild requires prior registration, then restores a valid grid.
        assert!(odms.rebuild_joint_grid(ra.object, rc.object).is_err());
        let e0 = odms.store().epoch();
        assert!(odms.rebuild_joint_grid(ra.object, rb.object).unwrap() > 0);
        assert!(odms.store().epoch() > e0, "rebuild must bump the epoch");
        assert!(odms.meta().joint_grid(ra.object, rb.object).unwrap().self_check());
    }

    #[test]
    fn reregistration_keeps_tag_queries_duplicate_free() {
        let odms = Odms::new(4);
        let c = odms.create_container("boss");
        let mut attrs = BTreeMap::new();
        attrs.insert("plate".to_string(), MetaValue::from(3i64));
        let opts = ImportOptions { attrs, ..Default::default() };
        let report = odms.import_array(c, "fiber", vpic_like(100), &opts).unwrap();
        odms.append_array(report.object, &vpic_like(50)).unwrap();
        odms.append_array(report.object, &vpic_like(50)).unwrap();
        let hits = odms.meta().query_tags(&[("plate", MetaValue::from(3i64))]);
        assert_eq!(hits, vec![report.object], "re-registration must not duplicate postings");
    }

    #[test]
    fn attrs_are_tag_queryable() {
        let odms = Odms::new(4);
        let c = odms.create_container("boss");
        let mut attrs = BTreeMap::new();
        attrs.insert("RADEG".to_string(), MetaValue::from(153.17));
        let opts = ImportOptions { attrs, ..Default::default() };
        let report = odms.import_array(c, "fiber-1", vpic_like(64), &opts).unwrap();
        let hits = odms.meta().query_tags(&[("RADEG", MetaValue::from(153.17))]);
        assert_eq!(hits, vec![report.object]);
    }
}
