//! Data movement across the storage hierarchy.
//!
//! PDC provides "asynchronous data movement across a hierarchy of memory
//! and storage layers" (§II): regions can be staged from the parallel
//! file system into the burst buffer (or DRAM) ahead of a query campaign
//! and demoted again when space is needed. The mover reports exactly what
//! moved so the harness can charge the simulated staging cost.

use crate::system::Odms;
use pdc_types::{ObjectId, PdcResult, RegionId};
use pdc_storage::StorageTier;
use serde::{Deserialize, Serialize};

/// What a staging operation moved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MoveReport {
    /// Regions migrated.
    pub regions: u32,
    /// Payload bytes migrated.
    pub bytes: u64,
}

impl Odms {
    /// Move one region to `tier`; returns the bytes moved.
    pub fn migrate_region(&self, region: RegionId, tier: StorageTier) -> PdcResult<u64> {
        self.store().migrate(region, tier)
    }

    /// Stage every region of `object` onto `tier` (e.g. pre-load an
    /// object into the burst buffer before a query campaign). Regions
    /// already on the target tier are counted but move no bytes.
    pub fn stage_object(&self, object: ObjectId, tier: StorageTier) -> PdcResult<MoveReport> {
        let meta = self.meta().get(object)?;
        let mut report = MoveReport::default();
        for r in 0..meta.num_regions() {
            let rid = RegionId::new(object, r);
            let (_, current) = self.store().get(rid)?;
            let bytes = self.store().migrate(rid, tier)?;
            report.regions += 1;
            if current != tier {
                report.bytes += bytes;
            }
        }
        Ok(report)
    }

    /// Stage only the regions of `object` whose histogram overlaps
    /// `interval` — selective staging guided by the same metadata the
    /// query planner uses.
    pub fn stage_matching_regions(
        &self,
        object: ObjectId,
        interval: &pdc_types::Interval,
        tier: StorageTier,
    ) -> PdcResult<MoveReport> {
        let meta = self.meta().get(object)?;
        let hists = self.meta().region_histograms(object)?;
        let mut report = MoveReport::default();
        for r in 0..meta.num_regions() {
            if hists[r as usize].estimate_hits(interval).upper == 0 {
                continue;
            }
            let rid = RegionId::new(object, r);
            let (_, current) = self.store().get(rid)?;
            let bytes = self.store().migrate(rid, tier)?;
            report.regions += 1;
            if current != tier {
                report.bytes += bytes;
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::ImportOptions;
    use pdc_types::{Interval, TypedVec};

    fn world() -> (Odms, ObjectId) {
        let odms = Odms::new(4);
        let c = odms.create_container("mv");
        let data: Vec<f32> = (0..10_000).map(|i| (i % 100) as f32).collect();
        let opts = ImportOptions { region_bytes: 4096, ..Default::default() };
        let obj = odms.import_array(c, "v", TypedVec::Float(data), &opts).unwrap().object;
        (odms, obj)
    }

    #[test]
    fn stage_object_moves_every_region_once() {
        let (odms, obj) = world();
        let report = odms.stage_object(obj, StorageTier::BurstBuffer).unwrap();
        assert_eq!(report.regions, 10);
        assert_eq!(report.bytes, 40_000);
        // idempotent: second staging moves nothing
        let again = odms.stage_object(obj, StorageTier::BurstBuffer).unwrap();
        assert_eq!(again.regions, 10);
        assert_eq!(again.bytes, 0);
        let by_tier = odms.store().bytes_by_tier();
        assert_eq!(by_tier.get(&StorageTier::BurstBuffer), Some(&40_000));
    }

    #[test]
    fn selective_staging_honours_histograms() {
        let (odms, obj) = world();
        // values cycle 0..100 per 1024-element region, so every region
        // overlaps (5, 10); a disjoint interval stages nothing.
        let hot = odms
            .stage_matching_regions(obj, &Interval::open(5.0, 10.0), StorageTier::BurstBuffer)
            .unwrap();
        assert_eq!(hot.regions, 10);
        let (odms2, obj2) = world();
        let none = odms2
            .stage_matching_regions(obj2, &Interval::open(500.0, 600.0), StorageTier::Dram)
            .unwrap();
        assert_eq!(none.regions, 0);
        assert_eq!(none.bytes, 0);
    }

    #[test]
    fn migrate_single_region() {
        let (odms, obj) = world();
        let moved = odms.migrate_region(RegionId::new(obj, 3), StorageTier::Dram).unwrap();
        assert_eq!(moved, 4096);
        assert_eq!(odms.store().get(RegionId::new(obj, 3)).unwrap().1, StorageTier::Dram);
        assert_eq!(odms.store().get(RegionId::new(obj, 4)).unwrap().1, StorageTier::Pfs);
    }

    #[test]
    fn missing_object_errors() {
        let (odms, _) = world();
        assert!(odms.stage_object(ObjectId(999), StorageTier::Dram).is_err());
    }
}
