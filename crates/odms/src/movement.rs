//! Data movement across the storage hierarchy.
//!
//! PDC provides "asynchronous data movement across a hierarchy of memory
//! and storage layers" (§II): regions can be staged from the parallel
//! file system into the burst buffer (or DRAM) ahead of a query campaign
//! and demoted again when space is needed. The mover reports exactly what
//! moved so the harness can charge the simulated staging cost.
//!
//! The mover doubles as the data plane for k-way replication: when a
//! membership change (or a failure rebuild) hands a slot's regions to a
//! new replica server, [`Odms::rebuild_regions`] performs the
//! checksum-verified copy reads and reports the volume.

use crate::system::Odms;
use pdc_types::{ObjectId, PdcResult, RegionId};
use pdc_storage::StorageTier;
use serde::{Deserialize, Serialize};

/// What a staging operation did. A staging pass *visits* every addressed
/// region (verifying and re-homing it), but only regions that were not
/// already on the target tier *move* bytes — the two counts answer
/// different questions ("what did you cover?" vs "what did it cost?") and
/// are reported separately.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MoveReport {
    /// Regions the pass addressed (already-resident ones included).
    pub regions_visited: u32,
    /// Regions that actually changed tier (bytes were moved for exactly
    /// these).
    pub regions_moved: u32,
    /// Payload bytes migrated (0 for an already-staged object).
    pub bytes: u64,
}

/// What a replication rebuild copied to new replica servers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RebuildReport {
    /// Regions copied.
    pub regions: u32,
    /// Payload bytes copied.
    pub bytes: u64,
}

impl RebuildReport {
    /// Fold another report into this one.
    pub fn merge(&mut self, other: &RebuildReport) {
        self.regions += other.regions;
        self.bytes += other.bytes;
    }
}

impl Odms {
    /// Move one region to `tier`; returns the bytes moved.
    pub fn migrate_region(&self, region: RegionId, tier: StorageTier) -> PdcResult<u64> {
        self.store().migrate(region, tier)
    }

    /// Stage every region of `object` onto `tier` (e.g. pre-load an
    /// object into the burst buffer before a query campaign). Regions
    /// already on the target tier are visited but move no bytes.
    pub fn stage_object(&self, object: ObjectId, tier: StorageTier) -> PdcResult<MoveReport> {
        let meta = self.meta().get(object)?;
        let mut report = MoveReport::default();
        for r in 0..meta.num_regions() {
            let rid = RegionId::new(object, r);
            let (_, current) = self.store().get(rid)?;
            let bytes = self.store().migrate(rid, tier)?;
            report.regions_visited += 1;
            if current != tier {
                report.regions_moved += 1;
                report.bytes += bytes;
            }
        }
        Ok(report)
    }

    /// Stage only the regions of `object` whose histogram overlaps
    /// `interval` — selective staging guided by the same metadata the
    /// query planner uses.
    pub fn stage_matching_regions(
        &self,
        object: ObjectId,
        interval: &pdc_types::Interval,
        tier: StorageTier,
    ) -> PdcResult<MoveReport> {
        let meta = self.meta().get(object)?;
        let hists = self.meta().region_histograms(object)?;
        let mut report = MoveReport::default();
        for r in 0..meta.num_regions() {
            if hists[r as usize].estimate_hits(interval).upper == 0 {
                continue;
            }
            let rid = RegionId::new(object, r);
            let (_, current) = self.store().get(rid)?;
            let bytes = self.store().migrate(rid, tier)?;
            report.regions_visited += 1;
            if current != tier {
                report.regions_moved += 1;
                report.bytes += bytes;
            }
        }
        Ok(report)
    }

    /// Copy `regions` to their new replica servers: each region is read
    /// through the checksum-verified path (a rebuild must never replicate
    /// silent corruption) and its payload size accounted. Tier state is
    /// untouched — replica copies live on the receiving server, not in
    /// the shared hierarchy — so later query costs are unaffected.
    pub fn rebuild_regions<I>(&self, regions: I) -> PdcResult<RebuildReport>
    where
        I: IntoIterator<Item = RegionId>,
    {
        let mut report = RebuildReport::default();
        for rid in regions {
            let (payload, _) = self.store().get(rid)?;
            report.regions += 1;
            report.bytes += payload.size_bytes();
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::ImportOptions;
    use pdc_types::{Interval, TypedVec};

    fn world() -> (Odms, ObjectId) {
        let odms = Odms::new(4);
        let c = odms.create_container("mv");
        let data: Vec<f32> = (0..10_000).map(|i| (i % 100) as f32).collect();
        let opts = ImportOptions { region_bytes: 4096, ..Default::default() };
        let obj = odms.import_array(c, "v", TypedVec::Float(data), &opts).unwrap().object;
        (odms, obj)
    }

    #[test]
    fn stage_object_moves_every_region_once() {
        let (odms, obj) = world();
        let report = odms.stage_object(obj, StorageTier::BurstBuffer).unwrap();
        assert_eq!(report.regions_visited, 10);
        assert_eq!(report.regions_moved, 10);
        assert_eq!(report.bytes, 40_000);
        // Idempotent: the second staging visits everything but moves
        // nothing — the distinction the two counters exist to pin.
        let again = odms.stage_object(obj, StorageTier::BurstBuffer).unwrap();
        assert_eq!(again.regions_visited, 10);
        assert_eq!(again.regions_moved, 0);
        assert_eq!(again.bytes, 0);
        let by_tier = odms.store().bytes_by_tier();
        assert_eq!(by_tier.get(&StorageTier::BurstBuffer), Some(&40_000));
    }

    #[test]
    fn selective_staging_honours_histograms() {
        let (odms, obj) = world();
        // values cycle 0..100 per 1024-element region, so every region
        // overlaps (5, 10); a disjoint interval stages nothing.
        let hot = odms
            .stage_matching_regions(obj, &Interval::open(5.0, 10.0), StorageTier::BurstBuffer)
            .unwrap();
        assert_eq!(hot.regions_visited, 10);
        assert_eq!(hot.regions_moved, 10);
        let (odms2, obj2) = world();
        let none = odms2
            .stage_matching_regions(obj2, &Interval::open(500.0, 600.0), StorageTier::Dram)
            .unwrap();
        assert_eq!(none.regions_visited, 0);
        assert_eq!(none.regions_moved, 0);
        assert_eq!(none.bytes, 0);
    }

    #[test]
    fn partially_staged_object_distinguishes_visited_from_moved() {
        let (odms, obj) = world();
        // Pre-stage regions 0..5; a full staging pass then visits all 10
        // but moves only the other 5.
        for r in 0..5 {
            odms.migrate_region(RegionId::new(obj, r), StorageTier::BurstBuffer).unwrap();
        }
        let report = odms.stage_object(obj, StorageTier::BurstBuffer).unwrap();
        assert_eq!(report.regions_visited, 10);
        assert_eq!(report.regions_moved, 5);
        // Regions 5..9 are 4096 B; the tail region holds the last
        // 784 floats (3136 B): 4 * 4096 + 3136.
        assert_eq!(report.bytes, 19_520);
    }

    #[test]
    fn migrate_single_region() {
        let (odms, obj) = world();
        let moved = odms.migrate_region(RegionId::new(obj, 3), StorageTier::Dram).unwrap();
        assert_eq!(moved, 4096);
        assert_eq!(odms.store().get(RegionId::new(obj, 3)).unwrap().1, StorageTier::Dram);
        assert_eq!(odms.store().get(RegionId::new(obj, 4)).unwrap().1, StorageTier::Pfs);
    }

    #[test]
    fn replication_rebuild_regions_counts_verified_copies() {
        let (odms, obj) = world();
        let ids: Vec<RegionId> = (0..10).map(|r| RegionId::new(obj, r)).collect();
        let report = odms.rebuild_regions(ids).unwrap();
        assert_eq!(report.regions, 10);
        assert_eq!(report.bytes, 40_000);
        // Tier state untouched: the copy is replica-side, not a migration.
        assert_eq!(odms.store().get(RegionId::new(obj, 0)).unwrap().1, StorageTier::Pfs);
        // A missing region is a typed error, not a silent skip.
        assert!(odms.rebuild_regions([RegionId::new(obj, 99)]).is_err());
    }

    #[test]
    fn missing_object_errors() {
        let (odms, _) = world();
        assert!(odms.stage_object(ObjectId(999), StorageTier::Dram).is_err());
    }
}
