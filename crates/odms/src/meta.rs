//! Object metadata.
//!
//! "Each data object is associated with metadata, including a name, ID,
//! and other attributes such as time of data generation, ownership,
//! relations to other objects, etc."

use pdc_types::{ContainerId, ObjectId, PdcType, RegionSpec, Shape};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A user-attribute value: string, integer, or float.
///
/// Floats hash/compare by bit pattern so attribute values can key the
/// metadata service's inverted index (tag queries like `RADEG = 153.17`
/// compare exactly, as in H5BOSS).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum MetaValue {
    /// A string tag.
    Str(String),
    /// An integer tag.
    I64(i64),
    /// A float tag (bitwise equality).
    F64(f64),
}

impl PartialEq for MetaValue {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (MetaValue::Str(a), MetaValue::Str(b)) => a == b,
            (MetaValue::I64(a), MetaValue::I64(b)) => a == b,
            (MetaValue::F64(a), MetaValue::F64(b)) => a.to_bits() == b.to_bits(),
            _ => false,
        }
    }
}

impl Eq for MetaValue {}

impl std::hash::Hash for MetaValue {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            MetaValue::Str(s) => {
                0u8.hash(state);
                s.hash(state);
            }
            MetaValue::I64(v) => {
                1u8.hash(state);
                v.hash(state);
            }
            MetaValue::F64(v) => {
                2u8.hash(state);
                v.to_bits().hash(state);
            }
        }
    }
}

impl fmt::Display for MetaValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetaValue::Str(s) => write!(f, "{s}"),
            MetaValue::I64(v) => write!(f, "{v}"),
            MetaValue::F64(v) => write!(f, "{v}"),
        }
    }
}

impl From<&str> for MetaValue {
    fn from(s: &str) -> Self {
        MetaValue::Str(s.to_string())
    }
}
impl From<i64> for MetaValue {
    fn from(v: i64) -> Self {
        MetaValue::I64(v)
    }
}
impl From<f64> for MetaValue {
    fn from(v: f64) -> Self {
        MetaValue::F64(v)
    }
}

/// Metadata of one data object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectMeta {
    /// Object id.
    pub id: ObjectId,
    /// Containing container.
    pub container: ContainerId,
    /// Object name (unique within the system).
    pub name: String,
    /// Element type.
    pub pdc_type: PdcType,
    /// Array dimensions.
    pub shape: Shape,
    /// Elements per region (the region size in elements).
    pub region_elems: u64,
    /// User attributes (tags).
    pub attrs: BTreeMap<String, MetaValue>,
    /// The derived bitmap-index object, if one was built.
    pub index_object: Option<ObjectId>,
    /// Whether a value-sorted replica exists for this object.
    pub has_sorted_replica: bool,
}

impl ObjectMeta {
    /// Total number of elements.
    pub fn num_elements(&self) -> u64 {
        self.shape.num_elements()
    }

    /// Total data size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.num_elements() * self.pdc_type.size_bytes()
    }

    /// Region size in bytes.
    pub fn region_bytes(&self) -> u64 {
        self.region_elems * self.pdc_type.size_bytes()
    }

    /// The 1-D spans of this object's regions.
    pub fn regions(&self) -> Vec<RegionSpec> {
        RegionSpec::partition(self.num_elements(), self.region_elems)
    }

    /// Number of regions.
    pub fn num_regions(&self) -> u32 {
        self.num_elements().div_ceil(self.region_elems) as u32
    }

    /// The span of region `idx`.
    pub fn region_span(&self, idx: u32) -> RegionSpec {
        let offset = idx as u64 * self.region_elems;
        let len = self.region_elems.min(self.num_elements() - offset);
        RegionSpec::new(offset, len)
    }

    /// The regions whose spans overlap `[start, start+len)` — used to map
    /// a spatial query constraint to the regions it touches.
    pub fn regions_overlapping_span(&self, start: u64, len: u64) -> Vec<u32> {
        if len == 0 || start >= self.num_elements() {
            return Vec::new();
        }
        let end = (start + len).min(self.num_elements());
        let first = (start / self.region_elems) as u32;
        let last = ((end - 1) / self.region_elems) as u32;
        (first..=last).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(n: u64, region: u64) -> ObjectMeta {
        ObjectMeta {
            id: ObjectId(1),
            container: ContainerId(1),
            name: "energy".into(),
            pdc_type: PdcType::Float,
            shape: Shape::one_d(n),
            region_elems: region,
            attrs: BTreeMap::new(),
            index_object: None,
            has_sorted_replica: false,
        }
    }

    #[test]
    fn sizes_and_regions() {
        let m = meta(1000, 256);
        assert_eq!(m.num_elements(), 1000);
        assert_eq!(m.size_bytes(), 4000);
        assert_eq!(m.region_bytes(), 1024);
        assert_eq!(m.num_regions(), 4);
        let regions = m.regions();
        assert_eq!(regions.len(), 4);
        assert_eq!(regions[3].len, 232);
        assert_eq!(m.region_span(3), regions[3]);
    }

    #[test]
    fn regions_overlapping_span_clips() {
        let m = meta(1000, 256);
        assert_eq!(m.regions_overlapping_span(0, 1000), vec![0, 1, 2, 3]);
        assert_eq!(m.regions_overlapping_span(200, 100), vec![0, 1]);
        assert_eq!(m.regions_overlapping_span(256, 256), vec![1]);
        assert_eq!(m.regions_overlapping_span(990, 500), vec![3]);
        assert!(m.regions_overlapping_span(2000, 10).is_empty());
        assert!(m.regions_overlapping_span(0, 0).is_empty());
    }

    #[test]
    fn meta_value_equality_and_hash() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(MetaValue::from(153.17));
        set.insert(MetaValue::from(153.17));
        set.insert(MetaValue::from("plate-3"));
        set.insert(MetaValue::from(42i64));
        assert_eq!(set.len(), 3);
        assert!(set.contains(&MetaValue::F64(153.17)));
        assert_ne!(MetaValue::F64(1.0), MetaValue::I64(1));
    }

    #[test]
    fn meta_value_display() {
        assert_eq!(MetaValue::from("x").to_string(), "x");
        assert_eq!(MetaValue::from(3i64).to_string(), "3");
        assert_eq!(MetaValue::from(2.5).to_string(), "2.5");
    }
}
