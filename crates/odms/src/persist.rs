//! Metadata persistence.
//!
//! "A metadata object is managed by only one server ... and is
//! periodically persisted to the storage system for fault tolerance"
//! (§II). The snapshot captures everything the metadata service owns —
//! object records, attribute tags, per-region and global histograms,
//! index sizes — as one serialized blob; restoring it onto a fresh
//! service reproduces the queryable state without re-reading any data.
//! (Sorted replicas are *data*, not metadata: they are rebuilt from the
//! stored object on restore, exactly as PDC would re-derive a replica.)

use crate::meta::ObjectMeta;
use crate::service::MetadataService;
use crate::system::Odms;
use pdc_histogram::Histogram;
use pdc_sorted::SortedReplica;
use pdc_types::{PdcError, PdcResult};
use serde::{Deserialize, Serialize};

/// A point-in-time serializable image of the metadata service.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetadataSnapshot {
    /// Snapshot format version.
    pub version: u32,
    /// Container records `(id, name)`.
    pub containers: Vec<(u64, String)>,
    /// All object metadata records.
    pub objects: Vec<ObjectMeta>,
    /// Per-object region histograms.
    pub histograms: Vec<(u64, Vec<Histogram>)>,
    /// Per-object serialized index-region sizes.
    pub index_sizes: Vec<(u64, Vec<u64>)>,
    /// Objects that had a sorted replica (rebuilt on restore).
    pub sorted_objects: Vec<u64>,
    /// Next-id watermark so restored services keep allocating unique ids.
    pub next_id: u64,
}

impl MetadataService {
    /// Capture a snapshot of everything this service owns.
    pub fn snapshot(&self) -> MetadataSnapshot {
        let objects = self.all_objects();
        let mut histograms = Vec::new();
        let mut index_sizes = Vec::new();
        let mut sorted_objects = Vec::new();
        for meta in &objects {
            if let Ok(hs) = self.region_histograms(meta.id) {
                histograms.push((meta.id.raw(), hs.as_ref().clone()));
            }
            if let Ok(sizes) = self.index_sizes(meta.id) {
                index_sizes.push((meta.id.raw(), sizes.as_ref().clone()));
            }
            if meta.has_sorted_replica {
                sorted_objects.push(meta.id.raw());
            }
        }
        MetadataSnapshot {
            version: 1,
            containers: self.all_containers(),
            objects,
            histograms,
            index_sizes,
            sorted_objects,
            next_id: self.next_id_watermark(),
        }
    }
}

impl Odms {
    /// Restore a metadata snapshot into this system (whose store must
    /// already hold the data regions — the snapshot is metadata only).
    /// Sorted replicas are rebuilt from the stored regions.
    pub fn restore_metadata(&self, snap: &MetadataSnapshot) -> PdcResult<()> {
        if snap.version != 1 {
            return Err(PdcError::Codec(format!(
                "unsupported metadata snapshot version {}",
                snap.version
            )));
        }
        let svc = self.meta();
        svc.bump_next_id(snap.next_id);
        for (id, name) in &snap.containers {
            svc.restore_container(pdc_types::ContainerId(*id), name);
        }
        for meta in &snap.objects {
            svc.register_object(meta.clone());
        }
        for (id, hists) in &snap.histograms {
            svc.set_region_histograms(pdc_types::ObjectId(*id), hists.clone());
        }
        for (id, sizes) in &snap.index_sizes {
            svc.set_index_sizes(pdc_types::ObjectId(*id), sizes.clone());
        }
        for &id in &snap.sorted_objects {
            let obj = pdc_types::ObjectId(id);
            let meta = svc.get(obj)?;
            // Re-derive the replica from the stored regions.
            let mut values = Vec::with_capacity(meta.num_elements() as usize);
            for r in 0..meta.num_regions() {
                let payload = self.read_region(obj, r)?;
                payload.append_f64_to(&mut values);
            }
            svc.set_sorted_replica(obj, SortedReplica::build(&values, meta.region_elems));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::ImportOptions;
    use pdc_types::{Interval, TypedVec};

    fn world() -> (Odms, pdc_types::ObjectId, Vec<f32>) {
        let odms = Odms::new(4);
        let c = odms.create_container("persist");
        let data: Vec<f32> = (0..20_000).map(|i| ((i * 13) % 500) as f32 / 10.0).collect();
        let opts = ImportOptions {
            region_bytes: 8192,
            build_index: true,
            build_sorted: true,
            ..Default::default()
        };
        let obj = odms.import_array(c, "v", TypedVec::Float(data.clone()), &opts).unwrap().object;
        (odms, obj, data)
    }

    #[test]
    fn snapshot_captures_everything() {
        let (odms, obj, _) = world();
        let snap = odms.meta().snapshot();
        assert_eq!(snap.version, 1);
        assert_eq!(snap.objects.len(), 1);
        assert_eq!(snap.objects[0].id, obj);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.index_sizes.len(), 1);
        assert_eq!(snap.sorted_objects, vec![obj.raw()]);
        assert_eq!(snap.containers.len(), 1);
    }

    #[test]
    fn restore_reproduces_queryable_state() {
        let (odms, obj, data) = world();
        let snap = odms.meta().snapshot();

        // A fresh system sharing the same object store payloads.
        let fresh = Odms::new(4);
        // copy data + index regions over (store contents are the "disk")
        let meta = odms.meta().get(obj).unwrap();
        for r in 0..meta.num_regions() {
            let rid = pdc_types::RegionId::new(obj, r);
            let (payload, tier) = odms.store().get(rid).unwrap();
            fresh.store().put(rid, payload, tier);
            if let Some(idx_obj) = meta.index_object {
                let irid = pdc_types::RegionId::new(idx_obj, r);
                let (payload, tier) = odms.store().get(irid).unwrap();
                fresh.store().put(irid, payload, tier);
            }
        }
        fresh.restore_metadata(&snap).unwrap();

        // Metadata answers match.
        let restored = fresh.meta().get(obj).unwrap();
        assert_eq!(restored.name, "v");
        assert_eq!(restored.num_regions(), meta.num_regions());
        let g = fresh.meta().global_histogram(obj).unwrap();
        assert_eq!(g.total(), data.len() as u64);
        // The rebuilt replica answers range lookups exactly.
        let replica = fresh.meta().sorted_replica(obj).unwrap();
        let iv = Interval::open(10.0, 12.0);
        let expect: Vec<u64> = (0..data.len() as u64)
            .filter(|&i| iv.contains(data[i as usize] as f64))
            .collect();
        assert_eq!(replica.lookup(&iv).selection.iter_coords().collect::<Vec<_>>(), expect);
        // Id allocation continues past the snapshot watermark.
        let new_id = fresh.meta().alloc_id();
        assert!(new_id.raw() >= snap.next_id);
    }

    #[test]
    fn wrong_version_rejected() {
        let (odms, _, _) = world();
        let mut snap = odms.meta().snapshot();
        snap.version = 99;
        let fresh = Odms::new(2);
        assert!(matches!(fresh.restore_metadata(&snap), Err(PdcError::Codec(_))));
    }
}
