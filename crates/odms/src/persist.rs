//! Metadata persistence.
//!
//! "A metadata object is managed by only one server ... and is
//! periodically persisted to the storage system for fault tolerance"
//! (§II). The snapshot captures everything the metadata service owns —
//! object records, attribute tags, per-region and global histograms,
//! index sizes — as one serialized blob; restoring it onto a fresh
//! service reproduces the queryable state without re-reading any data.
//! (Sorted replicas are *data*, not metadata: they are rebuilt from the
//! stored object on restore, exactly as PDC would re-derive a replica.)

use crate::meta::{MetaValue, ObjectMeta};
use crate::service::MetadataService;
use crate::system::Odms;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use pdc_histogram::Histogram;
use pdc_sorted::SortedReplica;
use pdc_storage::fnv1a64;
use pdc_types::{PdcError, PdcResult};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A point-in-time serializable image of the metadata service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetadataSnapshot {
    /// Snapshot format version.
    pub version: u32,
    /// Container records `(id, name)`.
    pub containers: Vec<(u64, String)>,
    /// All object metadata records.
    pub objects: Vec<ObjectMeta>,
    /// Per-object region histograms.
    pub histograms: Vec<(u64, Vec<Histogram>)>,
    /// Per-object serialized index-region sizes.
    pub index_sizes: Vec<(u64, Vec<u64>)>,
    /// Objects that had a sorted replica (rebuilt on restore).
    pub sorted_objects: Vec<u64>,
    /// Next-id watermark so restored services keep allocating unique ids.
    pub next_id: u64,
}

/// Frame magic identifying a serialized metadata snapshot.
const SNAPSHOT_MAGIC: [u8; 4] = *b"PDCS";
/// On-"disk" frame format version (distinct from the logical
/// [`MetadataSnapshot::version`], which describes the payload schema).
const SNAPSHOT_FORMAT: u32 = 1;
/// Frame header size: magic + format + payload length + checksum.
const FRAME_HEADER: usize = 4 + 4 + 8 + 8;

fn corrupt(why: impl Into<String>) -> PdcError {
    PdcError::SnapshotCorrupt(why.into())
}

fn put_string(b: &mut BytesMut, s: &str) {
    b.put_u32_le(s.len() as u32);
    b.put_slice(s.as_bytes());
}

fn put_u64s(b: &mut BytesMut, xs: &[u64]) {
    b.put_u32_le(xs.len() as u32);
    for &x in xs {
        b.put_u64_le(x);
    }
}

fn pdc_type_tag(t: pdc_types::PdcType) -> u8 {
    match t {
        pdc_types::PdcType::Float => 0,
        pdc_types::PdcType::Double => 1,
        pdc_types::PdcType::Int32 => 2,
        pdc_types::PdcType::UInt32 => 3,
        pdc_types::PdcType::Int64 => 4,
        pdc_types::PdcType::UInt64 => 5,
    }
}

fn pdc_type_from_tag(tag: u8) -> PdcResult<pdc_types::PdcType> {
    Ok(match tag {
        0 => pdc_types::PdcType::Float,
        1 => pdc_types::PdcType::Double,
        2 => pdc_types::PdcType::Int32,
        3 => pdc_types::PdcType::UInt32,
        4 => pdc_types::PdcType::Int64,
        5 => pdc_types::PdcType::UInt64,
        other => return Err(corrupt(format!("bad pdc_type tag {other}"))),
    })
}

/// Bounds-checked little-endian reader over a snapshot payload. Every
/// accessor verifies remaining length first, so a truncated or mangled
/// payload yields a typed [`PdcError::SnapshotCorrupt`] — never a panic.
struct Reader<'a> {
    buf: &'a [u8],
}

impl Reader<'_> {
    fn need(&self, n: usize) -> PdcResult<()> {
        if self.buf.len() < n {
            return Err(corrupt("truncated payload"));
        }
        Ok(())
    }

    fn u8(&mut self) -> PdcResult<u8> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    fn u32(&mut self) -> PdcResult<u32> {
        self.need(4)?;
        Ok(self.buf.get_u32_le())
    }

    fn u64(&mut self) -> PdcResult<u64> {
        self.need(8)?;
        Ok(self.buf.get_u64_le())
    }

    fn i64(&mut self) -> PdcResult<i64> {
        Ok(self.u64()? as i64)
    }

    fn f64(&mut self) -> PdcResult<f64> {
        self.need(8)?;
        Ok(self.buf.get_f64_le())
    }

    fn string(&mut self) -> PdcResult<String> {
        let n = self.u32()? as usize;
        self.need(n)?;
        let s =
            String::from_utf8(self.buf[..n].to_vec()).map_err(|_| corrupt("invalid utf-8"))?;
        self.buf.advance(n);
        Ok(s)
    }

    fn u64s(&mut self) -> PdcResult<Vec<u64>> {
        let n = self.u32()? as usize;
        // Length check before allocation: a mangled count can't force an
        // absurd reservation.
        self.need(n.saturating_mul(8))?;
        Ok((0..n).map(|_| self.buf.get_u64_le()).collect())
    }
}

fn encode_meta(b: &mut BytesMut, m: &ObjectMeta) {
    b.put_u64_le(m.id.raw());
    b.put_u64_le(m.container.raw());
    put_string(b, &m.name);
    b.put_u8(pdc_type_tag(m.pdc_type));
    put_u64s(b, &m.shape.0);
    b.put_u64_le(m.region_elems);
    b.put_u32_le(m.attrs.len() as u32);
    for (k, v) in &m.attrs {
        put_string(b, k);
        match v {
            MetaValue::Str(s) => {
                b.put_u8(0);
                put_string(b, s);
            }
            MetaValue::I64(i) => {
                b.put_u8(1);
                b.put_u64_le(*i as u64);
            }
            MetaValue::F64(f) => {
                b.put_u8(2);
                b.put_f64_le(*f);
            }
        }
    }
    match m.index_object {
        Some(idx) => {
            b.put_u8(1);
            b.put_u64_le(idx.raw());
        }
        None => b.put_u8(0),
    }
    b.put_u8(m.has_sorted_replica as u8);
}

fn decode_meta(r: &mut Reader<'_>) -> PdcResult<ObjectMeta> {
    let id = pdc_types::ObjectId(r.u64()?);
    let container = pdc_types::ContainerId(r.u64()?);
    let name = r.string()?;
    let pdc_type = pdc_type_from_tag(r.u8()?)?;
    let shape = pdc_types::Shape(r.u64s()?);
    let region_elems = r.u64()?;
    if region_elems == 0 {
        return Err(corrupt(format!("object {id} has zero region size")));
    }
    let nattrs = r.u32()? as usize;
    let mut attrs = BTreeMap::new();
    for _ in 0..nattrs {
        let key = r.string()?;
        let value = match r.u8()? {
            0 => MetaValue::Str(r.string()?),
            1 => MetaValue::I64(r.i64()?),
            2 => MetaValue::F64(r.f64()?),
            other => return Err(corrupt(format!("bad attr tag {other}"))),
        };
        attrs.insert(key, value);
    }
    let index_object = match r.u8()? {
        0 => None,
        1 => Some(pdc_types::ObjectId(r.u64()?)),
        other => return Err(corrupt(format!("bad index-object tag {other}"))),
    };
    let has_sorted_replica = r.u8()? != 0;
    Ok(ObjectMeta {
        id,
        container,
        name,
        pdc_type,
        shape,
        region_elems,
        attrs,
        index_object,
        has_sorted_replica,
    })
}

fn encode_hist(b: &mut BytesMut, h: &Histogram) {
    b.put_f64_le(h.bin_width());
    b.put_f64_le(h.first_edge());
    put_u64s(b, h.counts());
    b.put_f64_le(h.min());
    b.put_f64_le(h.max());
    b.put_u64_le(h.total());
    b.put_u64_le(h.max_bins() as u64);
}

fn decode_hist(r: &mut Reader<'_>) -> PdcResult<Histogram> {
    let bin_width = r.f64()?;
    let first_edge = r.f64()?;
    let counts = r.u64s()?;
    let min = r.f64()?;
    let max = r.f64()?;
    let total = r.u64()?;
    let max_bins = r.u64()? as usize;
    Histogram::from_raw_parts(bin_width, first_edge, counts, min, max, total, max_bins)
        .ok_or_else(|| corrupt("histogram failed validation"))
}

impl MetadataSnapshot {
    /// Serialize to a self-verifying frame: magic, format version,
    /// payload length, FNV-1a checksum, payload. Torn writes are caught
    /// by the length field, bit flips by the checksum.
    pub fn to_bytes(&self) -> Bytes {
        let payload = self.encode_payload();
        let mut buf = BytesMut::with_capacity(payload.len() + FRAME_HEADER);
        buf.put_slice(&SNAPSHOT_MAGIC);
        buf.put_u32_le(SNAPSHOT_FORMAT);
        buf.put_u64_le(payload.len() as u64);
        buf.put_u64_le(fnv1a64(&payload));
        buf.put_slice(&payload);
        buf.freeze()
    }

    fn encode_payload(&self) -> BytesMut {
        let mut b = BytesMut::new();
        b.put_u32_le(self.version);
        b.put_u32_le(self.containers.len() as u32);
        for (id, name) in &self.containers {
            b.put_u64_le(*id);
            put_string(&mut b, name);
        }
        b.put_u32_le(self.objects.len() as u32);
        for m in &self.objects {
            encode_meta(&mut b, m);
        }
        b.put_u32_le(self.histograms.len() as u32);
        for (id, hists) in &self.histograms {
            b.put_u64_le(*id);
            b.put_u32_le(hists.len() as u32);
            for h in hists {
                encode_hist(&mut b, h);
            }
        }
        b.put_u32_le(self.index_sizes.len() as u32);
        for (id, sizes) in &self.index_sizes {
            b.put_u64_le(*id);
            put_u64s(&mut b, sizes);
        }
        put_u64s(&mut b, &self.sorted_objects);
        b.put_u64_le(self.next_id);
        b
    }

    /// Decode a frame produced by [`Self::to_bytes`]. Any inconsistency —
    /// short frame, wrong magic, truncated payload, checksum mismatch,
    /// malformed field — yields [`PdcError::SnapshotCorrupt`]; this
    /// function never panics on hostile input.
    pub fn from_bytes(bytes: &[u8]) -> PdcResult<MetadataSnapshot> {
        if bytes.len() < FRAME_HEADER {
            return Err(corrupt("frame shorter than header"));
        }
        if bytes[..4] != SNAPSHOT_MAGIC {
            return Err(corrupt("bad magic"));
        }
        let mut hdr = &bytes[4..FRAME_HEADER];
        let format = hdr.get_u32_le();
        if format != SNAPSHOT_FORMAT {
            return Err(corrupt(format!("unsupported frame format {format}")));
        }
        let payload_len = hdr.get_u64_le();
        let checksum = hdr.get_u64_le();
        let payload = &bytes[FRAME_HEADER..];
        if payload.len() as u64 != payload_len {
            return Err(corrupt(format!(
                "torn write: payload is {} bytes, header claims {payload_len}",
                payload.len()
            )));
        }
        if fnv1a64(payload) != checksum {
            return Err(corrupt("payload checksum mismatch"));
        }
        Self::decode_payload(payload)
    }

    fn decode_payload(payload: &[u8]) -> PdcResult<MetadataSnapshot> {
        let mut r = Reader { buf: payload };
        let version = r.u32()?;
        let ncontainers = r.u32()? as usize;
        let mut containers = Vec::new();
        for _ in 0..ncontainers {
            let id = r.u64()?;
            containers.push((id, r.string()?));
        }
        let nobjects = r.u32()? as usize;
        let mut objects = Vec::new();
        for _ in 0..nobjects {
            objects.push(decode_meta(&mut r)?);
        }
        let nhist_objects = r.u32()? as usize;
        let mut histograms = Vec::new();
        for _ in 0..nhist_objects {
            let id = r.u64()?;
            let nhists = r.u32()? as usize;
            let mut hists = Vec::new();
            for _ in 0..nhists {
                hists.push(decode_hist(&mut r)?);
            }
            histograms.push((id, hists));
        }
        let nsize_objects = r.u32()? as usize;
        let mut index_sizes = Vec::new();
        for _ in 0..nsize_objects {
            let id = r.u64()?;
            index_sizes.push((id, r.u64s()?));
        }
        let sorted_objects = r.u64s()?;
        let next_id = r.u64()?;
        if !r.buf.is_empty() {
            return Err(corrupt(format!("{} trailing bytes after payload", r.buf.len())));
        }
        Ok(MetadataSnapshot {
            version,
            containers,
            objects,
            histograms,
            index_sizes,
            sorted_objects,
            next_id,
        })
    }
}

/// A keep-last-K journal of serialized snapshot frames — the simulated
/// "periodically persisted to the storage system" path (§II). Appending
/// past capacity drops the oldest entry. Recovery walks newest → oldest
/// and decodes the first frame that verifies, so a torn or bit-flipped
/// latest write falls back to an older consistent snapshot instead of
/// losing all metadata.
#[derive(Debug, Clone, Default)]
pub struct SnapshotJournal {
    entries: Vec<Bytes>,
    keep: usize,
}

impl SnapshotJournal {
    /// A journal retaining the newest `keep` frames (at least one).
    pub fn new(keep: usize) -> Self {
        Self { entries: Vec::new(), keep: keep.max(1) }
    }

    /// Serialize and append a snapshot, dropping the oldest frame when
    /// over capacity.
    pub fn append(&mut self, snap: &MetadataSnapshot) {
        self.push_raw(snap.to_bytes());
    }

    /// Append a raw frame verbatim — the fault-injection path for
    /// simulating torn or corrupted persistence writes in tests.
    pub fn push_raw(&mut self, frame: Bytes) {
        self.entries.push(frame);
        if self.entries.len() > self.keep {
            let excess = self.entries.len() - self.keep;
            self.entries.drain(..excess);
        }
    }

    /// Number of retained frames.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the journal holds no frames.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The newest frame, if any.
    pub fn latest(&self) -> Option<&Bytes> {
        self.entries.last()
    }

    /// Decode the newest frame that verifies. Returns the snapshot and
    /// the number of newer frames that failed verification and were
    /// skipped; [`PdcError::SnapshotCorrupt`] when no frame verifies.
    pub fn recover(&self) -> PdcResult<(MetadataSnapshot, usize)> {
        let mut last_err = corrupt("journal is empty");
        for (skipped, frame) in self.entries.iter().rev().enumerate() {
            match MetadataSnapshot::from_bytes(frame) {
                Ok(snap) => return Ok((snap, skipped)),
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    /// Restore the newest verifying snapshot into `odms`. Returns how
    /// many newer frames were skipped as corrupt.
    pub fn restore_into(&self, odms: &Odms) -> PdcResult<usize> {
        let (snap, skipped) = self.recover()?;
        odms.restore_metadata(&snap)?;
        Ok(skipped)
    }
}

impl MetadataService {
    /// Capture a snapshot of everything this service owns.
    pub fn snapshot(&self) -> MetadataSnapshot {
        let objects = self.all_objects();
        let mut histograms = Vec::new();
        let mut index_sizes = Vec::new();
        let mut sorted_objects = Vec::new();
        for meta in &objects {
            if let Ok(hs) = self.region_histograms(meta.id) {
                histograms.push((meta.id.raw(), hs.as_ref().clone()));
            }
            if let Ok(sizes) = self.index_sizes(meta.id) {
                index_sizes.push((meta.id.raw(), sizes.as_ref().clone()));
            }
            if meta.has_sorted_replica {
                sorted_objects.push(meta.id.raw());
            }
        }
        MetadataSnapshot {
            version: 1,
            containers: self.all_containers(),
            objects,
            histograms,
            index_sizes,
            sorted_objects,
            next_id: self.next_id_watermark(),
        }
    }
}

impl Odms {
    /// Restore a metadata snapshot into this system (whose store must
    /// already hold the data regions — the snapshot is metadata only).
    /// Sorted replicas are rebuilt from the stored regions.
    pub fn restore_metadata(&self, snap: &MetadataSnapshot) -> PdcResult<()> {
        if snap.version != 1 {
            return Err(PdcError::Codec(format!(
                "unsupported metadata snapshot version {}",
                snap.version
            )));
        }
        let svc = self.meta();
        svc.bump_next_id(snap.next_id);
        for (id, name) in &snap.containers {
            svc.restore_container(pdc_types::ContainerId(*id), name);
        }
        for meta in &snap.objects {
            svc.register_object(meta.clone());
        }
        for (id, hists) in &snap.histograms {
            svc.set_region_histograms(pdc_types::ObjectId(*id), hists.clone());
        }
        for (id, sizes) in &snap.index_sizes {
            svc.set_index_sizes(pdc_types::ObjectId(*id), sizes.clone());
        }
        for &id in &snap.sorted_objects {
            let obj = pdc_types::ObjectId(id);
            let meta = svc.get(obj)?;
            // Re-derive the replica from the stored regions.
            let mut values = Vec::with_capacity(meta.num_elements() as usize);
            for r in 0..meta.num_regions() {
                let payload = self.read_region(obj, r)?;
                payload.append_f64_to(&mut values);
            }
            svc.set_sorted_replica(obj, SortedReplica::build(&values, meta.region_elems));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::ImportOptions;
    use pdc_types::{Interval, TypedVec};

    fn world() -> (Odms, pdc_types::ObjectId, Vec<f32>) {
        let odms = Odms::new(4);
        let c = odms.create_container("persist");
        let data: Vec<f32> = (0..20_000).map(|i| ((i * 13) % 500) as f32 / 10.0).collect();
        let opts = ImportOptions {
            region_bytes: 8192,
            build_index: true,
            build_sorted: true,
            ..Default::default()
        };
        let obj = odms.import_array(c, "v", TypedVec::Float(data.clone()), &opts).unwrap().object;
        (odms, obj, data)
    }

    #[test]
    fn snapshot_captures_everything() {
        let (odms, obj, _) = world();
        let snap = odms.meta().snapshot();
        assert_eq!(snap.version, 1);
        assert_eq!(snap.objects.len(), 1);
        assert_eq!(snap.objects[0].id, obj);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.index_sizes.len(), 1);
        assert_eq!(snap.sorted_objects, vec![obj.raw()]);
        assert_eq!(snap.containers.len(), 1);
    }

    #[test]
    fn restore_reproduces_queryable_state() {
        let (odms, obj, data) = world();
        let snap = odms.meta().snapshot();

        // A fresh system sharing the same object store payloads.
        let fresh = Odms::new(4);
        // copy data + index regions over (store contents are the "disk")
        let meta = odms.meta().get(obj).unwrap();
        for r in 0..meta.num_regions() {
            let rid = pdc_types::RegionId::new(obj, r);
            let (payload, tier) = odms.store().get(rid).unwrap();
            fresh.store().put(rid, payload, tier);
            if let Some(idx_obj) = meta.index_object {
                let irid = pdc_types::RegionId::new(idx_obj, r);
                let (payload, tier) = odms.store().get(irid).unwrap();
                fresh.store().put(irid, payload, tier);
            }
        }
        fresh.restore_metadata(&snap).unwrap();

        // Metadata answers match.
        let restored = fresh.meta().get(obj).unwrap();
        assert_eq!(restored.name, "v");
        assert_eq!(restored.num_regions(), meta.num_regions());
        let g = fresh.meta().global_histogram(obj).unwrap();
        assert_eq!(g.total(), data.len() as u64);
        // The rebuilt replica answers range lookups exactly.
        let replica = fresh.meta().sorted_replica(obj).unwrap();
        let iv = Interval::open(10.0, 12.0);
        let expect: Vec<u64> = (0..data.len() as u64)
            .filter(|&i| iv.contains(data[i as usize] as f64))
            .collect();
        assert_eq!(replica.lookup(&iv).selection.iter_coords().collect::<Vec<_>>(), expect);
        // Id allocation continues past the snapshot watermark.
        let new_id = fresh.meta().alloc_id();
        assert!(new_id.raw() >= snap.next_id);
    }

    #[test]
    fn wrong_version_rejected() {
        let (odms, _, _) = world();
        let mut snap = odms.meta().snapshot();
        snap.version = 99;
        let fresh = Odms::new(2);
        assert!(matches!(fresh.restore_metadata(&snap), Err(PdcError::Codec(_))));
    }

    fn rich_snapshot() -> MetadataSnapshot {
        let odms = Odms::new(4);
        let c = odms.create_container("persist");
        let data: Vec<f32> = (0..5000).map(|i| ((i * 13) % 500) as f32 / 10.0).collect();
        let mut attrs = std::collections::BTreeMap::new();
        attrs.insert("plate".to_string(), crate::meta::MetaValue::from(3i64));
        attrs.insert("ra".to_string(), crate::meta::MetaValue::from(153.17));
        attrs.insert("tag".to_string(), crate::meta::MetaValue::from("boss"));
        let opts = ImportOptions {
            region_bytes: 4096,
            build_index: true,
            build_sorted: true,
            attrs,
            ..Default::default()
        };
        odms.import_array(c, "v", TypedVec::Float(data), &opts).unwrap();
        odms.meta().snapshot()
    }

    #[test]
    fn frame_round_trips_exactly() {
        let snap = rich_snapshot();
        let bytes = snap.to_bytes();
        let decoded = MetadataSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, snap);
    }

    #[test]
    fn every_truncation_is_detected_without_panic() {
        let snap = rich_snapshot();
        let bytes = snap.to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                matches!(
                    MetadataSnapshot::from_bytes(&bytes[..cut]),
                    Err(PdcError::SnapshotCorrupt(_))
                ),
                "truncation at {cut} escaped detection"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let snap = rich_snapshot();
        let bytes = snap.to_bytes().to_vec();
        // Flip one bit at a spread of positions across the frame; each
        // must be caught by magic, header, or checksum validation.
        for pos in (0..bytes.len()).step_by(97) {
            for bit in [0u8, 5] {
                let mut bad = bytes.clone();
                bad[pos] ^= 1 << bit;
                assert!(
                    matches!(
                        MetadataSnapshot::from_bytes(&bad),
                        Err(PdcError::SnapshotCorrupt(_))
                    ),
                    "bit flip at byte {pos} escaped detection"
                );
            }
        }
    }

    #[test]
    fn journal_keeps_last_k() {
        let snap = rich_snapshot();
        let mut journal = SnapshotJournal::new(3);
        assert!(journal.is_empty());
        for _ in 0..5 {
            journal.append(&snap);
        }
        assert_eq!(journal.len(), 3);
    }

    #[test]
    fn journal_recovers_past_torn_latest_write() {
        let (odms, obj, _) = world();
        let mut journal = SnapshotJournal::new(4);
        journal.append(&odms.meta().snapshot());
        // The latest persistence write was torn mid-frame.
        let good = odms.meta().snapshot().to_bytes();
        journal.push_raw(bytes::Bytes::from(good[..good.len() / 2].to_vec()));
        let (snap, skipped) = journal.recover().unwrap();
        assert_eq!(skipped, 1);
        assert_eq!(snap.objects[0].id, obj);

        // restore_into lands the recovered snapshot on a fresh system.
        let fresh = Odms::new(4);
        let meta = odms.meta().get(obj).unwrap();
        for r in 0..meta.num_regions() {
            let rid = pdc_types::RegionId::new(obj, r);
            let (payload, tier) = odms.store().get(rid).unwrap();
            fresh.store().put(rid, payload, tier);
        }
        assert_eq!(journal.restore_into(&fresh).unwrap(), 1);
        assert_eq!(fresh.meta().get(obj).unwrap().name, "v");
    }

    #[test]
    fn journal_with_no_verifying_frame_is_typed_error() {
        let journal = SnapshotJournal::new(2);
        assert!(matches!(journal.recover(), Err(PdcError::SnapshotCorrupt(_))));
        let mut journal = SnapshotJournal::new(2);
        journal.push_raw(bytes::Bytes::from_static(b"not a snapshot at all"));
        journal.push_raw(bytes::Bytes::from_static(b"PDCS but still garbage"));
        assert!(matches!(journal.recover(), Err(PdcError::SnapshotCorrupt(_))));
        let fresh = Odms::new(2);
        assert!(journal.restore_into(&fresh).is_err());
    }
}
