//! Negative paths of the metadata persistence layer: recovery from
//! empty, fully-corrupted, and partially-written journals must yield
//! typed errors — never a panic — and a failed `restore_into` must
//! leave the target system untouched.

use pdc_odms::{ImportOptions, MetadataSnapshot, Odms, SnapshotJournal};
use pdc_types::{PdcError, TypedVec};

fn snapshot_source() -> (Odms, pdc_types::ObjectId) {
    let odms = Odms::new(4);
    let c = odms.create_container("neg");
    let data: Vec<f32> = (0..10_000).map(|i| ((i * 13) % 500) as f32 / 10.0).collect();
    let opts = ImportOptions {
        region_bytes: 8192,
        build_index: true,
        build_sorted: true,
        ..Default::default()
    };
    let obj = odms.import_array(c, "v", TypedVec::Float(data), &opts).unwrap().object;
    (odms, obj)
}

/// No metadata, no containers, a fresh id watermark: the shape a system
/// has before any restore touched it.
fn assert_untouched(odms: &Odms) {
    assert_eq!(odms.meta().num_objects(), 0);
    assert!(odms.meta().all_containers().is_empty());
    assert_eq!(odms.meta().next_id_watermark(), Odms::new(1).meta().next_id_watermark());
}

#[test]
fn recover_from_empty_journal_is_typed_error() {
    let journal = SnapshotJournal::new(3);
    match journal.recover() {
        Err(PdcError::SnapshotCorrupt(why)) => {
            assert!(why.contains("empty"), "unhelpful error: {why}")
        }
        other => panic!("expected SnapshotCorrupt, got {other:?}"),
    }
}

#[test]
fn restore_into_from_empty_journal_is_a_no_op() {
    let journal = SnapshotJournal::new(3);
    let fresh = Odms::new(2);
    assert!(matches!(journal.restore_into(&fresh), Err(PdcError::SnapshotCorrupt(_))));
    assert_untouched(&fresh);
}

#[test]
fn journal_with_every_frame_corrupted_is_typed_error() {
    let (odms, _) = snapshot_source();
    let good = odms.meta().snapshot().to_bytes();
    let mut journal = SnapshotJournal::new(8);
    // A spread of damage across every retained frame: truncation inside
    // the header, truncation inside the payload, a flipped payload bit
    // (checksum catch), a flipped magic byte, an empty frame, and pure
    // garbage. recover() must walk past all of them and report a typed
    // error, not panic or return a half-decoded snapshot.
    journal.push_raw(bytes::Bytes::from(good[..7].to_vec()));
    journal.push_raw(bytes::Bytes::from(good[..good.len() - 3].to_vec()));
    let mut flipped = good.to_vec();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x10;
    journal.push_raw(bytes::Bytes::from(flipped));
    let mut bad_magic = good.to_vec();
    bad_magic[0] ^= 0xFF;
    journal.push_raw(bytes::Bytes::from(bad_magic));
    journal.push_raw(bytes::Bytes::new());
    journal.push_raw(bytes::Bytes::from_static(b"PDCS followed by nonsense"));
    assert_eq!(journal.len(), 6);
    assert!(matches!(journal.recover(), Err(PdcError::SnapshotCorrupt(_))));
}

#[test]
fn restore_into_on_partially_written_frame_is_a_no_op() {
    let (odms, _) = snapshot_source();
    let good = odms.meta().snapshot().to_bytes();
    // The only persisted frame is a torn write: the header survived but
    // the payload stops mid-object. The length field catches it before
    // any decoding starts, so nothing can leak into the target system.
    let mut journal = SnapshotJournal::new(2);
    journal.push_raw(bytes::Bytes::from(good[..good.len() / 3].to_vec()));
    let fresh = Odms::new(2);
    assert!(matches!(journal.restore_into(&fresh), Err(PdcError::SnapshotCorrupt(_))));
    assert_untouched(&fresh);
    // The store is untouched too: no payloads, pristine epoch counter.
    assert_eq!(fresh.store().epoch(), Odms::new(2).store().epoch());
}

#[test]
fn recovery_skips_corrupt_frames_but_restores_the_newest_good_one() {
    let (odms, obj) = snapshot_source();
    let good = odms.meta().snapshot();
    let mut journal = SnapshotJournal::new(4);
    journal.append(&good);
    let frame = good.to_bytes();
    journal.push_raw(bytes::Bytes::from(frame[..frame.len() / 2].to_vec()));
    journal.push_raw(bytes::Bytes::from_static(b"torn"));
    let (snap, skipped) = journal.recover().unwrap();
    assert_eq!(skipped, 2);
    assert_eq!(snap.objects[0].id, obj);
}

#[test]
fn hostile_frames_never_panic_the_decoder() {
    // Adversarial length fields: a frame whose header promises a huge
    // payload, and one whose inner counts point past the buffer. Both
    // must fail closed with a typed error.
    let (odms, _) = snapshot_source();
    let good = odms.meta().snapshot().to_bytes().to_vec();
    // Claim a payload length far beyond what follows.
    let mut oversize = good.clone();
    oversize[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(matches!(
        MetadataSnapshot::from_bytes(&oversize),
        Err(PdcError::SnapshotCorrupt(_))
    ));
    // Keep the frame checksum-consistent but mangle an inner count: the
    // bounds-checked reader must catch it. (Recompute the checksum so
    // damage reaches the payload decoder.)
    let mut inner = good.clone();
    let payload_start = 24;
    inner[payload_start + 4..payload_start + 8].copy_from_slice(&u32::MAX.to_le_bytes());
    let sum = pdc_storage::fnv1a64(&inner[payload_start..]);
    inner[16..24].copy_from_slice(&sum.to_le_bytes());
    assert!(matches!(
        MetadataSnapshot::from_bytes(&inner),
        Err(PdcError::SnapshotCorrupt(_))
    ));
}
