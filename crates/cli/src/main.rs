//! The `pdc` binary — see [`pdc_cli`] for the command set.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match pdc_cli::parse_args(args).and_then(pdc_cli::run) {
        Ok(output) => print!("{output}"),
        Err(err) => {
            eprintln!("error: {err}");
            eprintln!("{}", pdc_cli::USAGE);
            std::process::exit(2);
        }
    }
}
