//! # pdc-cli
//!
//! The `pdc` command-line tool: generate a calibrated VPIC dataset,
//! import it, and run textual queries against it under any evaluation
//! strategy — a hands-on way to explore the reproduced system.
//!
//! ```text
//! pdc query "Energy > 2.0 AND 100 < x < 200" --strategy HI --servers 16
//! pdc demo --particles 500000
//! pdc help
//! ```

use pdc_odms::{ImportOptions, Odms};
use pdc_query::{
    parse_query, Arrival, EngineConfig, ExplainPlan, QueryEngine, ServiceConfig, Strategy,
};
use pdc_server::{CorruptionSpec, FaultPlan};
use pdc_storage::{CostModel, SimDuration};
use pdc_workloads::{VpicConfig, VpicData};
use std::path::PathBuf;
use std::sync::Arc;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run one textual query, or a concurrent batch of queries.
    Query {
        /// The query expression.
        expr: String,
        /// Common options.
        opts: CommonOpts,
        /// Also fetch the named variable's values for the matches.
        get_data: Option<String>,
        /// Admit the expression this many times as one concurrent batch
        /// (`> 1` switches to `run_batch` and prints throughput).
        queries: u32,
        /// Extra expressions (one per line) admitted in the same batch.
        batch_file: Option<String>,
        /// Variable pair (`"A,B"`) to register a joint-bounds grid for
        /// before querying.
        joint: Option<String>,
        /// Admit a fresh server into the replicated pool mid-series
        /// (elastic scale-out; requires `--replicas >= 2`).
        join_server: bool,
        /// Retire this server from the replicated pool mid-series
        /// (elastic scale-in; requires `--replicas >= 2`).
        leave_server: Option<u32>,
    },
    /// Compare all five strategies on a few standard queries.
    Demo {
        /// Common options.
        opts: CommonOpts,
    },
    /// Stream appends into `Energy` between queries and verify every
    /// observed extent against a sealed-store rerun.
    Ingest {
        /// The query expression run between appends.
        expr: String,
        /// Common options.
        opts: CommonOpts,
        /// Number of streaming appends interleaved with the queries.
        append_batches: u32,
        /// Fraction of the dataset held back and appended mid-series.
        append_fraction: f64,
    },
    /// Replay a timestamped open-loop arrival trace through the
    /// multi-tenant admission-controlled service loop.
    Serve {
        /// Path of the trace file (tenant declarations + arrivals).
        trace_file: String,
        /// Common options.
        opts: CommonOpts,
        /// Deficit-round-robin quantum in simulated milliseconds.
        quantum_ms: f64,
        /// Disable continuous batching (the open shared-scan group).
        no_batching: bool,
    },
    /// Print usage.
    Help,
}

/// Options shared by the subcommands.
#[derive(Debug, Clone, PartialEq)]
pub struct CommonOpts {
    /// Particles per variable.
    pub particles: usize,
    /// Logical PDC servers.
    pub servers: u32,
    /// Region size in bytes.
    pub region_bytes: u64,
    /// Evaluation strategy.
    pub strategy: Strategy,
    /// RNG seed.
    pub seed: u64,
    /// Seed for a randomized fault plan (`None` = no injected faults).
    pub fault_seed: Option<u64>,
    /// Kill exactly this many servers (crash on an early region access).
    pub kill_servers: u32,
    /// Fraction of stored data regions (and aux structures) to corrupt
    /// deterministically before queries run (`0.0` = no corruption).
    pub corrupt_regions: f64,
    /// Seed for corruption site selection (`None` = fault seed, then RNG
    /// seed).
    pub corrupt_seed: Option<u64>,
    /// Wall-clock threads per region scan (0 = auto, 1 = sequential).
    pub scan_threads: u32,
    /// Print the per-region operator table (chosen physical operators,
    /// prune verdicts, estimated vs actual selectivity).
    pub explain: bool,
    /// Disable the hierarchical region directory (candidate regions are
    /// then enumerated from per-region metadata; results are identical).
    pub no_directory: bool,
    /// Replicas per assignment slot (1 = classic single-home layout).
    pub replicas: u32,
    /// Out-of-core memory budget in bytes: sealed cold regions spill to
    /// block-compressed files once resident bytes exceed it (`None` =
    /// fully resident).
    pub memory_budget: Option<u64>,
    /// Root directory for spilled block files (`None` = system temp).
    pub spill_dir: Option<String>,
}

impl Default for CommonOpts {
    fn default() -> Self {
        Self {
            particles: 500_000,
            servers: 16,
            region_bytes: 64 << 10,
            strategy: Strategy::Histogram,
            seed: 0x5EED_201C,
            fault_seed: None,
            kill_servers: 0,
            corrupt_regions: 0.0,
            corrupt_seed: None,
            scan_threads: 0,
            explain: false,
            no_directory: false,
            replicas: 1,
            memory_budget: None,
            spill_dir: None,
        }
    }
}

/// Usage text.
pub const USAGE: &str = "\
pdc — the PDC-Query reproduction CLI

USAGE:
  pdc query \"<expr>\" [options] [--get-data <var>]
  pdc demo [options]
  pdc ingest [\"<expr>\"] [options]
  pdc serve --trace-file <P> [options]
  pdc help

The dataset is a calibrated synthetic VPIC plasma: variables Energy, x,
y, z, Ux, Uy, Uz. Example expressions:
  \"Energy > 2.0\"
  \"2.1 < Energy < 2.2\"
  \"Energy > 2.0 AND 100 < x < 200 AND -90 < y < 0 AND 0 < z < 66\"

OPTIONS:
  --particles <N>    particles per variable   (default 500000)
  --servers <N>      logical PDC servers      (default 16)
  --region-kb <N>    region size in KiB       (default 64)
  --strategy <S>     F | H | HI | SH | A      (default H; A = adaptive
                     per-region operator selection)
  --seed <N>         RNG seed
  --fault-seed <N>   inject a seeded deterministic fault plan (crashes,
                     slowdowns, transient errors); queries still succeed
                     via retry + region reassignment
  --kill-servers <K> crash exactly K servers early in evaluation (K < servers)
  --corrupt-regions <F>
                     deterministically corrupt about fraction F (0..=1) of the
                     stored data regions and auxiliary structures; checksums
                     detect the damage and queries repair, rebuild, or fall
                     back — results stay exact
  --corrupt-seed <N> seed for corruption site selection (default: the fault
                     seed, then the RNG seed)
  --scan-threads <N> wall-clock threads per region scan; 0 = auto, 1 disables
                     the chunk-parallel kernel path (default 0)
  --replicas <K>     replicate every assignment slot on K servers (default 1
                     = classic single-home layout); killed servers then fail
                     over to live replicas instead of forcing a rescan, and
                     redundancy is rebuilt in the background after a crash
  --explain          print the per-region operator table: chosen physical
                     operator (scan / probe / sorted / rebuild), prune
                     verdicts, and estimated vs actual hits per region; in
                     batch mode, explains the lead query of the series; also
                     prints per-constraint directory statistics (bins probed,
                     regions killed by 1-D bounds vs joint bounds, admitted)
  --no-directory     disable the hierarchical region directory: candidate
                     regions are enumerated from per-region metadata instead
                     of the range->bin overlap lookup (results and simulated
                     costs are bit-identical either way)
  --memory-budget <SIZE>
                     out-of-core mode: once resident bytes exceed SIZE
                     (suffixes K/M/G accepted), sealed cold regions spill to
                     block-compressed checksummed files and are read back
                     block-by-block through a budgeted block cache; results
                     and simulated costs are bit-identical to a fully
                     resident run (only host memory changes)
  --spill-dir <P>    root directory for spilled block files (default: the
                     system temp dir; each store spills into its own
                     per-process subdirectory)
  --joint <A,B>      (query only) register a cross-variable joint-bounds
                     grid on the pair before querying; conjunctions over
                     both variables then kill candidate regions whose joint
                     cells are provably empty (e.g. --joint Energy,x)
  --get-data <var>   fetch that variable's values for the matches (query only)
  --join-server      (query only; needs --replicas >= 2) run the query, admit
                     a fresh server with live migration, and re-run — prints
                     the membership report and whether results changed
  --leave-server <S> (query only; needs --replicas >= 2) run the query, retire
                     server S (its replicas re-home with a verified copy),
                     and re-run — prints the membership report
  --queries <N>      (query only) admit the expression N times as one
                     concurrent batch: shared-scan prewarm + plan/artifact
                     caching; prints a throughput report (results are
                     bit-identical to running each query alone)
  --batch-file <P>   (query only) file of extra expressions, one per line
                     ('#' comments and blank lines skipped), admitted in
                     the same batch
  --append-batches <N>
                     (ingest only) number of streaming appends interleaved
                     with the query series (default 5)
  --append-fraction <F>
                     (ingest only) fraction of the dataset held back from
                     the initial import and appended mid-series (default 0.1)
  --trace-file <P>   (serve only; required) timestamped open-loop arrival
                     trace. '#' comments and blank lines are skipped.
                     'tenant <name> weight=<W> budget-ms=<F> cap=<N>' lines
                     register tenants (weight = fair-share weight, budget-ms
                     = admission budget of in-flight estimated simulated
                     cost, cap = deferral-queue length before rejection).
                     Every other line is an arrival:
                     '<t_ms> <tenant> <expr>' — a query submitted at
                     simulated time t_ms milliseconds. Unknown tenants
                     auto-register with weight=1 budget-ms=1000 cap=64
  --quantum-ms <F>   (serve only) deficit-round-robin quantum in simulated
                     milliseconds (default 5)
  --no-batching      (serve only) disable continuous batching: dispatches
                     are not folded into an open shared-scan group
                     (results and per-query charges are identical either
                     way; only host work changes)

The serve subcommand replays the trace through the multi-tenant service
loop: per-tenant FIFO queues, weighted-fair deficit-round-robin dispatch,
cost-budget admission control (deferrals and rejections are typed, never
silent), and continuous batching into open shared-scan groups. It prints
per-tenant p50/p95/p99 simulated latency and throughput, then replays
the dispatch order sequentially on a twin world — the last gate line is
'service equivalence: PASS' only if every served outcome is bit-identical
to its solo run.

The ingest subcommand imports Energy at a reduced initial extent, runs
the query, appends the held-back elements in batches (re-running the
query after each), and verifies every observed extent against a fresh
store imported whole at that extent. Histograms are maintained
incrementally; bitmap-index and sorted-replica upkeep is deferred and
drained at the end. The last line is the gate: 'ingest gate: PASS' only
if every interleaved query was bit-identical to its sealed rerun.
";

/// Parse `argv[1..]` into a command.
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Command, String> {
    let mut args = args.into_iter().peekable();
    let sub = match args.next() {
        None => return Ok(Command::Help),
        Some(s) => s,
    };
    match sub.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "query" => {
            let expr = args.next().ok_or("query requires an expression".to_string())?;
            let mut opts = CommonOpts::default();
            let mut batch = BatchOpts::default();
            parse_options(args, &mut opts, Some(&mut batch))?;
            if batch.queries == 0 {
                return Err("--queries must be at least 1".to_string());
            }
            Ok(Command::Query {
                expr,
                opts,
                get_data: batch.get_data,
                queries: batch.queries,
                batch_file: batch.batch_file,
                joint: batch.joint,
                join_server: batch.join_server,
                leave_server: batch.leave_server,
            })
        }
        "demo" => {
            let mut opts = CommonOpts::default();
            parse_options(args, &mut opts, None)?;
            Ok(Command::Demo { opts })
        }
        "ingest" => {
            // Optional positional expression before the flags.
            let expr = match args.peek() {
                Some(a) if !a.starts_with("--") => args.next().unwrap(),
                _ => "2.1 < Energy < 2.2".to_string(),
            };
            let mut opts = CommonOpts::default();
            let mut ingest = IngestOpts::default();
            parse_ingest_options(args, &mut opts, &mut ingest)?;
            if ingest.append_batches == 0 {
                return Err("--append-batches must be at least 1".to_string());
            }
            if !(0.0..1.0).contains(&ingest.append_fraction) || ingest.append_fraction <= 0.0 {
                return Err(format!(
                    "--append-fraction {} must be within (0, 1)",
                    ingest.append_fraction
                ));
            }
            Ok(Command::Ingest {
                expr,
                opts,
                append_batches: ingest.append_batches,
                append_fraction: ingest.append_fraction,
            })
        }
        "serve" => {
            let mut opts = CommonOpts::default();
            let mut serve = ServeOpts::default();
            parse_serve_options(args, &mut opts, &mut serve)?;
            let trace_file =
                serve.trace_file.ok_or("serve requires --trace-file <path>".to_string())?;
            if !serve.quantum_ms.is_finite() || serve.quantum_ms <= 0.0 {
                return Err(format!("--quantum-ms {} must be positive", serve.quantum_ms));
            }
            Ok(Command::Serve {
                trace_file,
                opts,
                quantum_ms: serve.quantum_ms,
                no_batching: serve.no_batching,
            })
        }
        other => Err(format!("unknown subcommand '{other}' (try 'pdc help')")),
    }
}

/// Options valid only for `pdc serve`.
struct ServeOpts {
    trace_file: Option<String>,
    quantum_ms: f64,
    no_batching: bool,
}

impl Default for ServeOpts {
    fn default() -> Self {
        Self { trace_file: None, quantum_ms: 5.0, no_batching: false }
    }
}

/// Parse serve flags, deferring everything else to [`parse_options`].
fn parse_serve_options<I: Iterator<Item = String>>(
    args: std::iter::Peekable<I>,
    opts: &mut CommonOpts,
    serve: &mut ServeOpts,
) -> Result<(), String> {
    let mut rest = Vec::new();
    let mut args = args;
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--trace-file" => serve.trace_file = Some(value("--trace-file")?),
            "--quantum-ms" => {
                serve.quantum_ms = value("--quantum-ms")?
                    .parse()
                    .map_err(|e| format!("--quantum-ms: {e}"))?;
            }
            "--no-batching" => serve.no_batching = true,
            other => rest.push(other.to_string()),
        }
    }
    parse_options(rest.into_iter().peekable(), opts, None)
}

/// Options valid only for `pdc ingest`.
struct IngestOpts {
    append_batches: u32,
    append_fraction: f64,
}

impl Default for IngestOpts {
    fn default() -> Self {
        Self { append_batches: 5, append_fraction: 0.1 }
    }
}

/// Parse ingest flags, deferring everything else to [`parse_options`].
fn parse_ingest_options<I: Iterator<Item = String>>(
    args: std::iter::Peekable<I>,
    opts: &mut CommonOpts,
    ingest: &mut IngestOpts,
) -> Result<(), String> {
    let mut rest = Vec::new();
    let mut args = args;
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--append-batches" => {
                ingest.append_batches = value("--append-batches")?
                    .parse()
                    .map_err(|e| format!("--append-batches: {e}"))?;
            }
            "--append-fraction" => {
                ingest.append_fraction = value("--append-fraction")?
                    .parse()
                    .map_err(|e| format!("--append-fraction: {e}"))?;
            }
            other => rest.push(other.to_string()),
        }
    }
    parse_options(rest.into_iter().peekable(), opts, None)
}

/// Options valid only for `pdc query`.
struct BatchOpts {
    get_data: Option<String>,
    queries: u32,
    batch_file: Option<String>,
    joint: Option<String>,
    join_server: bool,
    leave_server: Option<u32>,
}

impl Default for BatchOpts {
    fn default() -> Self {
        Self {
            get_data: None,
            queries: 1,
            batch_file: None,
            joint: None,
            join_server: false,
            leave_server: None,
        }
    }
}

fn parse_options<I: Iterator<Item = String>>(
    mut args: std::iter::Peekable<I>,
    opts: &mut CommonOpts,
    mut query_only: Option<&mut BatchOpts>,
) -> Result<(), String> {
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--particles" => {
                opts.particles =
                    value("--particles")?.parse().map_err(|e| format!("--particles: {e}"))?;
            }
            "--servers" => {
                opts.servers =
                    value("--servers")?.parse().map_err(|e| format!("--servers: {e}"))?;
            }
            "--region-kb" => {
                let kb: u64 =
                    value("--region-kb")?.parse().map_err(|e| format!("--region-kb: {e}"))?;
                opts.region_bytes = kb << 10;
            }
            "--seed" => {
                opts.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--fault-seed" => {
                opts.fault_seed = Some(
                    value("--fault-seed")?.parse().map_err(|e| format!("--fault-seed: {e}"))?,
                );
            }
            "--kill-servers" => {
                opts.kill_servers = value("--kill-servers")?
                    .parse()
                    .map_err(|e| format!("--kill-servers: {e}"))?;
            }
            "--corrupt-regions" => {
                opts.corrupt_regions = value("--corrupt-regions")?
                    .parse()
                    .map_err(|e| format!("--corrupt-regions: {e}"))?;
            }
            "--corrupt-seed" => {
                opts.corrupt_seed = Some(
                    value("--corrupt-seed")?
                        .parse()
                        .map_err(|e| format!("--corrupt-seed: {e}"))?,
                );
            }
            "--scan-threads" => {
                opts.scan_threads = value("--scan-threads")?
                    .parse()
                    .map_err(|e| format!("--scan-threads: {e}"))?;
            }
            "--replicas" => {
                opts.replicas =
                    value("--replicas")?.parse().map_err(|e| format!("--replicas: {e}"))?;
                if opts.replicas == 0 {
                    return Err("--replicas must be at least 1".to_string());
                }
            }
            "--memory-budget" => {
                let budget = parse_size(&value("--memory-budget")?)?;
                if budget == 0 {
                    return Err("--memory-budget must be positive".to_string());
                }
                opts.memory_budget = Some(budget);
            }
            "--spill-dir" => {
                opts.spill_dir = Some(value("--spill-dir")?);
            }
            "--strategy" => {
                opts.strategy = parse_strategy(&value("--strategy")?)?;
            }
            "--explain" => {
                opts.explain = true;
            }
            "--no-directory" => {
                opts.no_directory = true;
            }
            "--joint" => match query_only.as_deref_mut() {
                Some(b) => b.joint = Some(value("--joint")?),
                None => return Err("--joint is only valid for 'pdc query'".to_string()),
            },
            "--get-data" => match query_only.as_deref_mut() {
                Some(b) => b.get_data = Some(value("--get-data")?),
                None => return Err("--get-data is only valid for 'pdc query'".to_string()),
            },
            "--queries" => match query_only.as_deref_mut() {
                Some(b) => {
                    b.queries =
                        value("--queries")?.parse().map_err(|e| format!("--queries: {e}"))?;
                }
                None => return Err("--queries is only valid for 'pdc query'".to_string()),
            },
            "--batch-file" => match query_only.as_deref_mut() {
                Some(b) => b.batch_file = Some(value("--batch-file")?),
                None => return Err("--batch-file is only valid for 'pdc query'".to_string()),
            },
            "--join-server" => match query_only.as_deref_mut() {
                Some(b) => b.join_server = true,
                None => return Err("--join-server is only valid for 'pdc query'".to_string()),
            },
            "--leave-server" => match query_only.as_deref_mut() {
                Some(b) => {
                    b.leave_server = Some(
                        value("--leave-server")?
                            .parse()
                            .map_err(|e| format!("--leave-server: {e}"))?,
                    );
                }
                None => return Err("--leave-server is only valid for 'pdc query'".to_string()),
            },
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok(())
}

/// Parse a byte size with an optional K/M/G binary suffix ("64M").
fn parse_size(s: &str) -> Result<u64, String> {
    let t = s.trim();
    let (digits, mult) = match t.chars().last() {
        Some('k') | Some('K') => (&t[..t.len() - 1], 1u64 << 10),
        Some('m') | Some('M') => (&t[..t.len() - 1], 1u64 << 20),
        Some('g') | Some('G') => (&t[..t.len() - 1], 1u64 << 30),
        _ => (t, 1),
    };
    digits
        .parse::<u64>()
        .map_err(|e| format!("size '{s}': {e}"))?
        .checked_mul(mult)
        .ok_or_else(|| format!("size '{s}' overflows"))
}

/// Parse a strategy name (paper label or long form, case-insensitive).
pub fn parse_strategy(s: &str) -> Result<Strategy, String> {
    match s.to_ascii_uppercase().as_str() {
        "F" | "PDC-F" | "FULLSCAN" => Ok(Strategy::FullScan),
        "H" | "PDC-H" | "HISTOGRAM" => Ok(Strategy::Histogram),
        "HI" | "PDC-HI" | "INDEX" | "HISTOGRAMINDEX" => Ok(Strategy::HistogramIndex),
        "SH" | "PDC-SH" | "SORTED" | "SORTEDHISTOGRAM" => Ok(Strategy::SortedHistogram),
        "A" | "PDC-A" | "ADAPTIVE" => Ok(Strategy::Adaptive),
        other => Err(format!("unknown strategy '{other}' (use F, H, HI, SH, or A)")),
    }
}

/// Stand up a world per the options: generate, import all 7 variables
/// (index everywhere, sorted replica on Energy), return the system.
pub fn build_world(opts: &CommonOpts) -> (Arc<Odms>, VpicData) {
    let data = VpicData::generate(&VpicConfig { particles: opts.particles, seed: opts.seed });
    let odms = Arc::new(Odms::new(64));
    // Spill is configured before the import so ingest itself runs under
    // the budget: regions demote as they seal instead of peaking at the
    // full dataset size first.
    configure_spill(&odms, opts);
    let container = odms.create_container("cli");
    let import = ImportOptions {
        region_bytes: opts.region_bytes,
        build_index: true,
        build_sorted: true,
        ..Default::default()
    };
    data.import_all(&odms, container, &import).expect("import");
    (odms, data)
}

/// Put the store in out-of-core mode when `--memory-budget` was given.
/// Every store gets its own fresh subdirectory: block-file names encode
/// only (object, region), and distinct worlds in one process reuse the
/// same ids, so sharing a directory would cross their spill files.
pub fn configure_spill(odms: &Arc<Odms>, opts: &CommonOpts) {
    let Some(budget) = opts.memory_budget else { return };
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let root = opts.spill_dir.as_ref().map(PathBuf::from).unwrap_or_else(std::env::temp_dir);
    let dir = root.join(format!("pdc_spill_{}_{n}", std::process::id()));
    odms.store().configure_spill(&dir, budget, 32 << 20).expect("configure spill directory");
}

/// One-line out-of-core report, or `None` when spill is off.
pub fn format_spill_report(odms: &Arc<Odms>, opts: &CommonOpts) -> Option<String> {
    let stats = odms.store().spill_stats()?;
    let budget = opts.memory_budget.unwrap_or(0);
    let ratio = if stats.spilled_comp_bytes > 0 {
        stats.spilled_raw_bytes as f64 / stats.spilled_comp_bytes as f64
    } else {
        1.0
    };
    Some(format!(
        "out-of-core: resident high-water {} B of {} B budget, {} region(s) spilled \
         ({} B as {} B on disk, {:.2}x), block cache {:.1}% hits, \
         {} demotion(s), {} fault-in(s)\n",
        stats.resident_high_water,
        budget,
        stats.spilled_regions,
        stats.spilled_raw_bytes,
        stats.spilled_comp_bytes,
        ratio,
        stats.block_cache.hit_rate() * 100.0,
        stats.demotions,
        stats.fault_ins,
    ))
}

/// The fault plan implied by the options, if any. `--kill-servers` wins
/// over `--fault-seed` when both are given (the seed then only picks
/// which servers die); `--corrupt-regions` composes with either.
pub fn fault_plan(opts: &CommonOpts) -> Result<Option<FaultPlan>, String> {
    if !(0.0..=1.0).contains(&opts.corrupt_regions) {
        return Err(format!(
            "--corrupt-regions {} must be within [0, 1]",
            opts.corrupt_regions
        ));
    }
    let mut plan = if opts.kill_servers > 0 {
        if opts.kill_servers >= opts.servers {
            return Err(format!(
                "--kill-servers {} must leave at least one of {} servers alive",
                opts.kill_servers, opts.servers
            ));
        }
        let seed = opts.fault_seed.unwrap_or(opts.seed);
        Some(FaultPlan::kill_count(opts.kill_servers, opts.servers, seed))
    } else {
        opts.fault_seed.map(|seed| FaultPlan::seeded(seed, opts.servers))
    };
    if opts.corrupt_regions > 0.0 {
        let seed = opts.corrupt_seed.or(opts.fault_seed).unwrap_or(opts.seed);
        let spec = CorruptionSpec::new(opts.corrupt_regions, opts.corrupt_regions, seed);
        plan = Some(plan.unwrap_or_else(FaultPlan::new).with_corruption(spec));
    }
    Ok(plan)
}

/// An engine per the options, with the scale-appropriate cost model.
pub fn build_engine(odms: &Arc<Odms>, opts: &CommonOpts) -> QueryEngine {
    let f = 125e9 / opts.particles as f64;
    QueryEngine::new(
        Arc::clone(odms),
        EngineConfig {
            strategy: opts.strategy,
            num_servers: opts.servers,
            cache_bytes_per_server: 1 << 30,
            cost: CostModel::scaled(f, f * opts.servers as f64 / 64.0, 256.0),
            order_by_selectivity: true,
            fault_plan: fault_plan(opts).expect("fault plan validated at parse time"),
            scan_threads: opts.scan_threads,
            use_directory: !opts.no_directory,
            replicas: opts.replicas,
            ..Default::default()
        },
    )
}

/// Render an [`ExplainPlan`] as the per-region operator table: one row
/// per evaluated region with the chosen physical operator, the prune
/// verdict, and estimated vs actual hits.
pub fn format_explain(odms: &Arc<Odms>, plan: &ExplainPlan) -> String {
    use std::fmt::Write as _;
    let name_of = |id: pdc_types::ObjectId| {
        odms.meta().get(id).map(|m| m.name.clone()).unwrap_or_else(|_| id.to_string())
    };
    let mut s = String::new();
    let _ = writeln!(
        s,
        "explain: strategy {}, sorted primary: {}",
        plan.strategy,
        if plan.sorted_primary { "yes" } else { "no" },
    );
    for (obj, iv, est) in &plan.constraints {
        let _ = match est {
            Some(e) => writeln!(
                s,
                "  constraint: {} {} (est. selectivity {:.4})",
                name_of(*obj),
                iv,
                e
            ),
            None => writeln!(s, "  constraint: {} {}", name_of(*obj), iv),
        };
    }
    if !plan.slot_routes.is_empty() {
        const MAX_ROUTES: usize = 48;
        let shown: Vec<String> = plan
            .slot_routes
            .iter()
            .enumerate()
            .take(MAX_ROUTES)
            .map(|(slot, srv)| format!("{slot}\u{2192}{srv}"))
            .collect();
        let tail = if plan.slot_routes.len() > MAX_ROUTES {
            format!(" ... ({} more)", plan.slot_routes.len() - MAX_ROUTES)
        } else {
            String::new()
        };
        let _ = writeln!(
            s,
            "  slot routes (slot\u{2192}chosen server): {}{}",
            shown.join(" "),
            tail
        );
    }
    for d in &plan.directory {
        let _ = writeln!(
            s,
            "  directory: {} — {} bin(s) probed, {} region(s): \
             {} killed 1-D, {} killed joint, {} admitted",
            name_of(d.object),
            d.bins_probed,
            d.regions_total,
            d.killed_1d,
            d.killed_joint,
            d.admitted,
        );
    }
    let _ = writeln!(
        s,
        "  {:<8} {:>6}  {:<7} {:<7} {:>6} {:>4}  {:>15} {:>8} {:>8}",
        "object", "region", "phase", "op", "pruned", "cold", "est(lo..hi)", "actual", "span"
    );
    const MAX_ROWS: usize = 64;
    for r in plan.regions.iter().take(MAX_ROWS) {
        let est = r.est.map_or_else(|| "-".to_string(), |e| format!("{}..{}", e.lower, e.upper));
        let actual = r.actual_hits.map_or_else(|| "-".to_string(), |h| h.to_string());
        let _ = writeln!(
            s,
            "  {:<8} {:>6}  {:<7} {:<7} {:>6} {:>4}  {:>15} {:>8} {:>8}",
            name_of(r.object),
            r.region,
            r.phase.label(),
            r.op.label(),
            if r.pruned { "yes" } else { "no" },
            if r.cold { "yes" } else { "no" },
            est,
            actual,
            r.span_len,
        );
    }
    if plan.regions.len() > MAX_ROWS {
        let _ = writeln!(s, "  ... ({} more rows)", plan.regions.len() - MAX_ROWS);
    }
    s
}

/// Execute a parsed command; returns the text to print.
pub fn run(cmd: Command) -> Result<String, String> {
    match cmd {
        Command::Help => Ok(USAGE.to_string()),
        Command::Query {
            expr,
            opts,
            get_data,
            queries,
            batch_file,
            joint,
            join_server,
            leave_server,
        } => {
            let mut out = String::new();
            fault_plan(&opts)?; // validate before the expensive import
            let (odms, _data) = build_world(&opts);
            if let Some(spec) = &joint {
                let (a, b) = spec
                    .split_once(',')
                    .ok_or_else(|| format!("--joint {spec}: expected 'A,B'"))?;
                let a = odms.meta().lookup_name(a.trim()).map_err(|e| e.to_string())?.id;
                let b = odms.meta().lookup_name(b.trim()).map_err(|e| e.to_string())?.id;
                let bytes = odms.register_joint_pair(a, b).map_err(|e| e.to_string())?;
                out.push_str(&format!("joint bounds: registered ({spec}), {bytes} B\n"));
            }
            let engine = build_engine(&odms, &opts);
            let query = parse_query(&expr, &odms).map_err(|e| e.to_string())?;
            out.push_str(&format!("query: {query}\n"));
            if opts.replicas > 1 {
                let members = engine.placement_members().unwrap_or_default();
                let slots = engine.replica_sets().map(|s| s.len()).unwrap_or(0);
                out.push_str(&format!(
                    "replication: k={} over {} member(s), {} slot(s)\n",
                    opts.replicas,
                    members.len(),
                    slots,
                ));
            }
            // Elastic membership smoke: bracket the change with runs of
            // the same query and report whether the bits moved (they
            // must not).
            if join_server || leave_server.is_some() {
                let before = engine.run(&query).map_err(|e| e.to_string())?;
                if join_server {
                    let rep = engine.join_server().map_err(|e| e.to_string())?;
                    let after = engine.run(&query).map_err(|e| e.to_string())?;
                    out.push_str(&format!(
                        "membership: +server {} — {} slot(s) re-homed, {} region(s) / {} B \
                         copied; results unchanged: {}\n",
                        rep.server,
                        rep.slots_changed,
                        rep.regions_copied,
                        rep.bytes_copied,
                        if after.selection == before.selection { "yes" } else { "NO" },
                    ));
                }
                if let Some(s) = leave_server {
                    let rep = engine.leave_server(s).map_err(|e| e.to_string())?;
                    let after = engine.run(&query).map_err(|e| e.to_string())?;
                    out.push_str(&format!(
                        "membership: -server {} — {} slot(s) re-homed, {} region(s) / {} B \
                         copied; results unchanged: {}\n",
                        rep.server,
                        rep.slots_changed,
                        rep.regions_copied,
                        rep.bytes_copied,
                        if after.selection == before.selection { "yes" } else { "NO" },
                    ));
                }
            }

            // Assemble the admitted series: the main expression repeated
            // `--queries` times, plus every expression from the batch file.
            let mut series = vec![query.clone(); queries.max(1) as usize];
            if let Some(path) = &batch_file {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("--batch-file {path}: {e}"))?;
                for line in text.lines() {
                    let line = line.trim();
                    if line.is_empty() || line.starts_with('#') {
                        continue;
                    }
                    series.push(
                        parse_query(line, &odms).map_err(|e| format!("{line}: {e}"))?,
                    );
                }
            }

            let mut explain_plan = None;
            let outcome = if series.len() > 1 {
                let batch = engine.run_batch(&series).map_err(|e| e.to_string())?;
                if opts.explain {
                    // Batch-mode variant: explain the lead query of the
                    // series (operator choices are pure functions of
                    // metadata/histograms/cost, so this is exactly the
                    // pipeline every admission of it ran).
                    let (_, plan) = engine.explain(&series[0]).map_err(|e| e.to_string())?;
                    explain_plan = Some(plan);
                }
                // Throughput in simulated time: the CLI's output contract is
                // byte-identical runs for identical flags, so the report must
                // not include host wall clock (BENCH_throughput.json records
                // that side).
                let sim_secs = batch.batch_elapsed.as_secs_f64().max(1e-9);
                let s = &batch.stats;
                out.push_str(&format!(
                    "batch: {} queries in simulated {} ({:.2} queries/simulated-s) — \
                     plan cache {}/{} hits, artifact hit ratio {:.1}%, \
                     shared reads saved {}/{}, prewarmed {} regions\n",
                    s.queries,
                    batch.batch_elapsed,
                    s.queries as f64 / sim_secs,
                    s.plan_hits,
                    s.plan_hits + s.plan_misses,
                    s.artifact_hit_ratio() * 100.0,
                    s.resident_reads,
                    s.region_touches,
                    s.prewarm_regions,
                ));
                batch.outcomes.into_iter().next().expect("non-empty batch")
            } else if opts.explain {
                let (outcome, plan) = engine.explain(&query).map_err(|e| e.to_string())?;
                explain_plan = Some(plan);
                outcome
            } else {
                engine.run(&query).map_err(|e| e.to_string())?
            };
            out.push_str(&format!(
                "{}: {} hits ({} runs) in simulated {} — PFS {} B / {} requests, scanned {}\n",
                opts.strategy,
                outcome.nhits,
                outcome.selection.num_runs(),
                outcome.elapsed,
                outcome.io.pfs_bytes_read,
                outcome.io.pfs_read_requests,
                outcome.work.elements_scanned,
            ));
            if let Some(line) = format_spill_report(&odms, &opts) {
                out.push_str(&line);
            }
            if !outcome.failed_servers.is_empty() {
                if outcome.breakdown.failover > SimDuration::ZERO
                    || (opts.replicas > 1 && outcome.breakdown.recovery == SimDuration::ZERO)
                {
                    out.push_str(&format!(
                        "faults: servers {:?} failed; slots failed over to live replicas \
                         in {} retry round(s), failover overhead {}\n",
                        outcome.failed_servers,
                        outcome.retry_rounds,
                        outcome.breakdown.failover,
                    ));
                } else {
                    out.push_str(&format!(
                        "faults: servers {:?} failed; recovered in {} retry round(s), \
                         recovery overhead {}\n",
                        outcome.failed_servers, outcome.retry_rounds, outcome.breakdown.recovery,
                    ));
                }
            }
            if outcome.rebuild_regions > 0 {
                out.push_str(&format!(
                    "rebuild: redundancy restored in the background — {} region(s) / {} B \
                     re-replicated\n",
                    outcome.rebuild_regions, outcome.rebuild_bytes,
                ));
            }
            if outcome.integrity.any() {
                out.push_str(&format!(
                    "integrity: {} checksum failure(s), {} region(s) repaired, \
                     {} aux rebuild(s), {} fallback region(s), overhead {}\n",
                    outcome.integrity.checksum_failures,
                    outcome.integrity.repaired_regions,
                    outcome.integrity.aux_rebuilds,
                    outcome.integrity.fallback_regions,
                    outcome.breakdown.integrity,
                ));
            }
            if let Some(plan) = &explain_plan {
                out.push_str(&format_explain(&odms, plan));
            }
            if let Some(var) = get_data {
                let meta = odms.meta().lookup_name(&var).map_err(|e| e.to_string())?;
                let data = engine.get_data(&outcome, meta.id).map_err(|e| e.to_string())?;
                let preview: Vec<String> = (0..data.data.len().min(8))
                    .map(|i| format!("{}", data.data.get_value(i)))
                    .collect();
                out.push_str(&format!(
                    "get_data({var}): {} values from {} servers in {} — first: [{}]\n",
                    data.data.len(),
                    data.servers_involved,
                    data.elapsed,
                    preview.join(", ")
                ));
            }
            Ok(out)
        }
        Command::Ingest { expr, opts, append_batches, append_fraction } => {
            fault_plan(&opts)?; // validate before the expensive import
            let data =
                VpicData::generate(&VpicConfig { particles: opts.particles, seed: opts.seed });
            let total = opts.particles;
            let append_total =
                ((total as f64 * append_fraction).round() as usize).max(append_batches as usize);
            if append_total >= total {
                return Err(format!(
                    "--append-fraction {append_fraction} leaves no initial extent for \
                     {total} particles"
                ));
            }
            let initial = total - append_total;
            let import = ImportOptions {
                region_bytes: opts.region_bytes,
                build_index: true,
                build_sorted: true,
                ..Default::default()
            };
            // A world with every variable at full extent except Energy,
            // which starts at the reduced initial extent and grows by
            // streaming appends between queries.
            let build_at = |energy_extent: usize| -> Result<Arc<Odms>, String> {
                let odms = Arc::new(Odms::new(64));
                let container = odms.create_container("cli");
                for (name, values) in data.variables() {
                    let vals = if name == "Energy" {
                        values[..energy_extent].to_vec()
                    } else {
                        values.clone()
                    };
                    odms.import_array(
                        container,
                        name,
                        pdc_types::TypedVec::Float(vals),
                        &import,
                    )
                    .map_err(|e| e.to_string())?;
                }
                Ok(odms)
            };
            let odms = build_at(initial)?;
            // Only the streamed-into world runs under the budget; the
            // sealed rerun worlds stay fully resident, so the ingest gate
            // doubles as a spill-on/off consistency check.
            configure_spill(&odms, &opts);
            let engine = build_engine(&odms, &opts);
            let query = parse_query(&expr, &odms).map_err(|e| e.to_string())?;
            let energy = odms.meta().lookup_name("Energy").map_err(|e| e.to_string())?.id;

            let mut out = String::new();
            out.push_str(&format!(
                "ingest: query {query}; initial {initial} elements, {append_batches} appends \
                 totalling {append_total} ({:.1}% of {total})\n",
                100.0 * append_total as f64 / total as f64,
            ));
            let chunk = append_total / append_batches as usize;
            let mut consistent = 0u32;
            let mut checked = 0u32;
            for k in 0..=append_batches as usize {
                let outcome = engine.run(&query).map_err(|e| e.to_string())?;
                // Rerun against a store imported whole at the extent the
                // plan saw: hits must be bit-identical.
                let extent = outcome.planned_elements as usize;
                let sealed = build_at(extent)?;
                let sealed_engine = build_engine(&sealed, &opts);
                let sealed_q = parse_query(&expr, &sealed).map_err(|e| e.to_string())?;
                let sealed_out = sealed_engine.run(&sealed_q).map_err(|e| e.to_string())?;
                let ok = outcome.nhits == sealed_out.nhits
                    && outcome.selection == sealed_out.selection;
                checked += 1;
                consistent += ok as u32;
                out.push_str(&format!(
                    "  extent {extent} (epoch {}): {} hits — sealed rerun {} {}\n",
                    outcome.planned_epoch,
                    outcome.nhits,
                    sealed_out.nhits,
                    if ok { "ok" } else { "MISMATCH" },
                ));
                if k < append_batches as usize {
                    let lo = initial + k * chunk;
                    let hi = if k + 1 == append_batches as usize {
                        total
                    } else {
                        initial + (k + 1) * chunk
                    };
                    let report = odms
                        .append_array(
                            energy,
                            &pdc_types::TypedVec::Float(data.energy[lo..hi].to_vec()),
                        )
                        .map_err(|e| e.to_string())?;
                    out.push_str(&format!(
                        "  append {}: +{} elems (tail fill: {}, new regions: {}, sealed: {})\n",
                        k + 1,
                        report.appended_elems,
                        report.filled_tail.map_or_else(|| "-".into(), |r| r.to_string()),
                        report.new_regions.len(),
                        report.sealed_regions.len(),
                    ));
                }
            }
            let maint = odms.run_deferred_maintenance().map_err(|e| e.to_string())?;
            out.push_str(&format!(
                "maintenance: rebuilt {} index region(s), {} sorted replica(s), {} B written\n",
                maint.index_regions_rebuilt, maint.sorted_replicas_rebuilt, maint.bytes_written,
            ));
            // Post-maintenance rerun still matches the final extent.
            let final_out = engine.run(&query).map_err(|e| e.to_string())?;
            let sealed = build_at(final_out.planned_elements as usize)?;
            let sealed_engine = build_engine(&sealed, &opts);
            let sealed_q = parse_query(&expr, &sealed).map_err(|e| e.to_string())?;
            let sealed_final = sealed_engine.run(&sealed_q).map_err(|e| e.to_string())?;
            checked += 1;
            consistent += (final_out.selection == sealed_final.selection) as u32;
            if let Some(line) = format_spill_report(&odms, &opts) {
                out.push_str(&line);
            }
            out.push_str(&format!(
                "ingest gate: {} ({consistent}/{checked} extents sealed-consistent)\n",
                if consistent == checked { "PASS" } else { "FAIL" },
            ));
            Ok(out)
        }
        Command::Demo { opts } => {
            let mut out = String::new();
            fault_plan(&opts)?; // validate before the expensive import
            let (odms, _data) = build_world(&opts);
            out.push_str(&format!(
                "dataset: {} particles x 7 variables, {} regions of {} KiB, {} servers\n\n",
                opts.particles,
                odms.meta().lookup_name("Energy").unwrap().num_regions(),
                opts.region_bytes >> 10,
                opts.servers,
            ));
            if let Some(line) = format_spill_report(&odms, &opts) {
                out.push_str(&line);
                out.push('\n');
            }
            let queries = [
                "2.1 < Energy < 2.2",
                "3.5 < Energy < 3.6",
                "Energy > 2.0 AND 100 < x < 200 AND -90 < y < 0 AND 0 < z < 66",
            ];
            for expr in queries {
                out.push_str(&format!("query: {expr}\n"));
                let query = parse_query(expr, &odms).map_err(|e| e.to_string())?;
                for strategy in [
                    Strategy::FullScan,
                    Strategy::Histogram,
                    Strategy::HistogramIndex,
                    Strategy::SortedHistogram,
                    Strategy::Adaptive,
                ] {
                    let engine =
                        build_engine(&odms, &CommonOpts { strategy, ..opts.clone() });
                    engine.run(&query).map_err(|e| e.to_string())?; // warm
                    let outcome = engine.run(&query).map_err(|e| e.to_string())?;
                    out.push_str(&format!(
                        "  {:>7}: {:>8} hits, simulated {:>12}\n",
                        strategy.label(),
                        outcome.nhits,
                        outcome.elapsed.to_string(),
                    ));
                }
            }
            Ok(out)
        }
        Command::Serve { trace_file, opts, quantum_ms, no_batching } => {
            fault_plan(&opts)?; // validate before the expensive import
            let text = std::fs::read_to_string(&trace_file)
                .map_err(|e| format!("--trace-file {trace_file}: {e}"))?;
            let (odms, _data) = build_world(&opts);
            configure_spill(&odms, &opts);

            // Trace grammar: '#' comments and blanks are skipped; 'tenant'
            // lines register policies; everything else is an arrival of the
            // form '<t_ms> <tenant> <expr>'.
            struct RawArrival {
                at_ms: f64,
                tenant: String,
                expr: String,
            }
            let mut raw: Vec<RawArrival> = Vec::new();
            for (idx, line) in text.lines().enumerate() {
                let lineno = idx + 1;
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                let mut it = line.split_whitespace();
                let first = it.next().expect("non-empty trimmed line");
                if first == "tenant" {
                    let name = it
                        .next()
                        .ok_or_else(|| format!("trace line {lineno}: tenant requires a name"))?;
                    let mut weight = 1u32;
                    let mut budget_ms = 1000.0f64;
                    let mut cap = 64usize;
                    for kv in it {
                        let (k, v) = kv.split_once('=').ok_or_else(|| {
                            format!("trace line {lineno}: expected key=value, got '{kv}'")
                        })?;
                        match k {
                            "weight" => {
                                weight = v
                                    .parse()
                                    .map_err(|e| format!("trace line {lineno}: weight: {e}"))?;
                            }
                            "budget-ms" => {
                                budget_ms = v.parse().map_err(|e| {
                                    format!("trace line {lineno}: budget-ms: {e}")
                                })?;
                            }
                            "cap" => {
                                cap = v
                                    .parse()
                                    .map_err(|e| format!("trace line {lineno}: cap: {e}"))?;
                            }
                            other => {
                                return Err(format!(
                                    "trace line {lineno}: unknown tenant attribute '{other}' \
                                     (expected weight=, budget-ms=, cap=)"
                                ));
                            }
                        }
                    }
                    if !budget_ms.is_finite() || budget_ms <= 0.0 {
                        return Err(format!(
                            "trace line {lineno}: budget-ms {budget_ms} must be positive"
                        ));
                    }
                    odms.register_tenant(name, weight, (budget_ms * 1e6) as u64, cap);
                } else {
                    let at_ms: f64 = first
                        .parse()
                        .map_err(|e| format!("trace line {lineno}: arrival time: {e}"))?;
                    if !at_ms.is_finite() || at_ms < 0.0 {
                        return Err(format!(
                            "trace line {lineno}: arrival time {at_ms} must be non-negative"
                        ));
                    }
                    let tenant = it
                        .next()
                        .ok_or_else(|| {
                            format!("trace line {lineno}: arrival requires a tenant name")
                        })?
                        .to_string();
                    let expr = it.collect::<Vec<_>>().join(" ");
                    if expr.is_empty() {
                        return Err(format!(
                            "trace line {lineno}: arrival requires a query expression"
                        ));
                    }
                    raw.push(RawArrival { at_ms, tenant, expr });
                }
            }
            if raw.is_empty() {
                return Err(format!("--trace-file {trace_file}: no arrivals in trace"));
            }
            // Tenants referenced only by arrivals get the default policy.
            for a in &raw {
                if odms.tenant(&a.tenant).is_none() {
                    odms.register_tenant(&a.tenant, 1, 1_000_000_000, 64);
                }
            }

            let engine = build_engine(&odms, &opts);
            let arrivals = raw
                .iter()
                .map(|a| {
                    Ok(Arrival {
                        at: SimDuration::from_secs_f64(a.at_ms / 1e3),
                        tenant: a.tenant.clone(),
                        query: parse_query(&a.expr, &odms)
                            .map_err(|e| format!("'{}': {e}", a.expr))?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?;
            let mut cfg = ServiceConfig::from_odms(&odms);
            cfg.quantum = SimDuration::from_secs_f64(quantum_ms / 1e3);
            cfg.continuous_batching = !no_batching;
            let report = engine.serve(&cfg, &arrivals).map_err(|e| e.to_string())?;

            let mut out = String::new();
            out.push_str(&format!(
                "serve: {} arrival(s) from {} tenant(s), quantum {}, \
                 continuous batching {}\n",
                report.stats.submitted,
                cfg.tenants.len(),
                cfg.quantum,
                if cfg.continuous_batching { "on" } else { "off" },
            ));
            out.push_str(&format!(
                "outcomes: {} completed, {} deferral(s), {} rejected \
                 (simulated span {})\n",
                report.stats.completed,
                report.stats.deferrals,
                report.stats.rejected,
                report.end_time,
            ));
            for t in report.tenant_summaries() {
                out.push_str(&format!(
                    "  tenant {:>10}: {:>3}/{} done ({} rejected, {} deferred), \
                     p50 {} p95 {} p99 {}, {:.2} q/s simulated\n",
                    t.name,
                    t.completed,
                    t.submitted,
                    t.rejected,
                    t.deferred,
                    t.p50,
                    t.p95,
                    t.p99,
                    t.throughput_qps,
                ));
            }
            if let Some(g) = report.group {
                out.push_str(&format!(
                    "shared scan group: {} member(s) over {} admission(s), \
                     {} late join(s), {} interval(s) admitted, \
                     {} region(s) prewarmed\n",
                    g.members, g.admissions, g.late_joins, g.admitted_intervals,
                    g.prewarm_regions,
                ));
            }

            // Equivalence gate: replay the dispatch order sequentially on a
            // twin world; every served outcome must be bit-identical to its
            // solo run (scheduling decides *when*, never *what*).
            let (twin, _d2) = build_world(&opts);
            configure_spill(&twin, &opts);
            let twin_engine = build_engine(&twin, &opts);
            let mut identical = 0usize;
            for s in &report.served {
                let q = parse_query(&raw[s.arrival_index].expr, &twin)
                    .map_err(|e| e.to_string())?;
                let solo = twin_engine.run(&q).map_err(|e| e.to_string())?;
                identical += (solo.selection == s.outcome.selection
                    && solo.nhits == s.outcome.nhits
                    && solo.elapsed == s.outcome.elapsed
                    && solo.breakdown == s.outcome.breakdown)
                    as usize;
            }
            out.push_str(&format!(
                "service equivalence: {} ({identical}/{} served outcome(s) \
                 bit-identical to solo replay)\n",
                if identical == report.served.len() { "PASS" } else { "FAIL" },
                report.served.len(),
            ));
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|w| w.to_string()).collect()
    }

    #[test]
    fn spill_flags_parse() {
        let cmd = parse_args(argv(
            "query Energy>2 --memory-budget 4M --spill-dir /tmp/pdc_cli_spill",
        ))
        .unwrap();
        match cmd {
            Command::Query { opts, .. } => {
                assert_eq!(opts.memory_budget, Some(4 << 20));
                assert_eq!(opts.spill_dir.as_deref(), Some("/tmp/pdc_cli_spill"));
            }
            other => panic!("{other:?}"),
        }
        // Suffix forms and the plain-bytes form.
        assert_eq!(parse_size("512").unwrap(), 512);
        assert_eq!(parse_size("64K").unwrap(), 64 << 10);
        assert_eq!(parse_size("2g").unwrap(), 2 << 30);
        assert!(parse_size("nope").is_err());
        assert!(parse_args(argv("query E>1 --memory-budget 0")).is_err());
        assert_eq!(CommonOpts::default().memory_budget, None);
    }

    #[test]
    fn budgeted_query_matches_unbounded_and_reports() {
        let base = CommonOpts { particles: 60_000, servers: 4, ..CommonOpts::default() };
        let query = |opts: CommonOpts| {
            run(Command::Query {
                expr: "2.1 < Energy < 2.2".to_string(),
                opts,
                get_data: None,
                queries: 1,
                batch_file: None,
                joint: None,
                join_server: false,
                leave_server: None,
            })
            .unwrap()
        };
        let unbounded = query(base.clone());
        // 7 variables x 60k f32 = ~1.6 MiB of data; 256 KiB forces most
        // sealed regions (and their index blobs) out of core.
        let bounded = query(CommonOpts { memory_budget: Some(256 << 10), ..base });
        let hits = |s: &str| {
            s.lines().find(|l| l.contains(" hits (")).unwrap().split(':').nth(1).unwrap()
                .trim().split(' ').next().unwrap().to_string()
        };
        assert_eq!(hits(&unbounded), hits(&bounded), "{unbounded}\n{bounded}");
        assert!(bounded.contains("out-of-core: resident high-water"), "{bounded}");
        assert!(bounded.contains("region(s) spilled"), "{bounded}");
        assert!(!unbounded.contains("out-of-core:"), "{unbounded}");
    }

    #[test]
    fn explain_marks_cold_regions() {
        let out = run(Command::Query {
            expr: "Energy > 2.0".to_string(),
            opts: CommonOpts {
                particles: 40_000,
                servers: 4,
                explain: true,
                memory_budget: Some(128 << 10),
                ..CommonOpts::default()
            },
            get_data: None,
            queries: 1,
            batch_file: None,
            joint: None,
            join_server: false,
            leave_server: None,
        })
        .unwrap();
        let header = out.lines().find(|l| l.contains("pruned")).expect("explain table header");
        assert!(header.contains("cold"), "{out}");
        let cold_rows = out
            .lines()
            .skip_while(|l| !l.contains("pruned"))
            .skip(1)
            .filter(|l| l.split_whitespace().nth(5) == Some("yes"))
            .count();
        assert!(cold_rows > 0, "a 128 KiB budget must leave some region cold:\n{out}");
    }

    #[test]
    fn ingest_gate_passes_under_memory_budget() {
        let out = run(Command::Ingest {
            expr: "2.1 < Energy < 2.2".to_string(),
            opts: CommonOpts {
                particles: 40_000,
                servers: 4,
                memory_budget: Some(256 << 10),
                ..CommonOpts::default()
            },
            append_batches: 3,
            append_fraction: 0.1,
        })
        .unwrap();
        // The sealed reruns are fully resident, so the gate is itself a
        // spill-on/off bit-identity check.
        assert!(out.contains("ingest gate: PASS (5/5"), "{out}");
        assert!(out.contains("out-of-core: resident high-water"), "{out}");
        assert!(!out.contains("MISMATCH"), "{out}");
    }

    #[test]
    fn no_args_is_help() {
        assert_eq!(parse_args(argv("")).unwrap(), Command::Help);
        assert_eq!(parse_args(argv("help")).unwrap(), Command::Help);
        assert_eq!(parse_args(argv("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn query_args_parse() {
        let cmd = parse_args(vec![
            "query".to_string(),
            "Energy > 2.0".to_string(),
            "--strategy".to_string(),
            "HI".to_string(),
            "--particles".to_string(),
            "1000".to_string(),
            "--get-data".to_string(),
            "x".to_string(),
        ])
        .unwrap();
        match cmd {
            Command::Query { expr, opts, get_data, queries, batch_file, joint, join_server, leave_server } => {
                assert_eq!(expr, "Energy > 2.0");
                assert_eq!(opts.strategy, Strategy::HistogramIndex);
                assert_eq!(opts.particles, 1000);
                assert_eq!(get_data.as_deref(), Some("x"));
                assert_eq!(queries, 1);
                assert_eq!(batch_file, None);
                assert_eq!(joint, None);
                assert!(!join_server);
                assert_eq!(leave_server, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn directory_flags_parse() {
        let cmd = parse_args(argv("query Energy>2 --no-directory --joint Energy,x")).unwrap();
        match cmd {
            Command::Query { opts, joint, .. } => {
                assert!(opts.no_directory);
                assert_eq!(joint.as_deref(), Some("Energy,x"));
            }
            other => panic!("{other:?}"),
        }
        assert!(!CommonOpts::default().no_directory);
        assert!(parse_args(argv("demo --joint Energy,x")).is_err());
        // --no-directory is a common flag: demo accepts it.
        assert!(parse_args(argv("demo --no-directory")).is_ok());
    }

    #[test]
    fn joint_directory_query_matches_undirected_run() {
        let base = CommonOpts { particles: 50_000, servers: 4, explain: true, ..CommonOpts::default() };
        let expr = "Energy > 2.0 AND 100 < x < 200".to_string();
        let with = run(Command::Query {
            expr: expr.clone(),
            opts: base.clone(),
            get_data: None,
            queries: 1,
            batch_file: None,
            joint: Some("Energy,x".to_string()),
            join_server: false,
            leave_server: None,
        })
        .unwrap();
        let without = run(Command::Query {
            expr,
            opts: CommonOpts { no_directory: true, explain: false, ..base },
            get_data: None,
            queries: 1,
            batch_file: None,
            joint: None,
            join_server: false,
            leave_server: None,
        })
        .unwrap();
        assert!(with.contains("joint bounds: registered (Energy,x)"), "{with}");
        assert!(with.contains("directory: "), "{with}");
        assert!(with.contains(" admitted"), "{with}");
        let hits = |s: &str| {
            s.lines().find(|l| l.contains(" hits (")).unwrap().split(':').nth(1).unwrap()
                .trim().split(' ').next().unwrap().to_string()
        };
        assert_eq!(hits(&with), hits(&without), "with: {with}\nwithout: {without}");
    }

    #[test]
    fn demo_rejects_get_data() {
        let err = parse_args(argv("demo --get-data x")).unwrap_err();
        assert!(err.contains("--get-data"));
    }

    #[test]
    fn strategy_aliases() {
        assert_eq!(parse_strategy("f").unwrap(), Strategy::FullScan);
        assert_eq!(parse_strategy("PDC-SH").unwrap(), Strategy::SortedHistogram);
        assert_eq!(parse_strategy("index").unwrap(), Strategy::HistogramIndex);
        assert_eq!(parse_strategy("a").unwrap(), Strategy::Adaptive);
        assert_eq!(parse_strategy("PDC-A").unwrap(), Strategy::Adaptive);
        assert_eq!(parse_strategy("adaptive").unwrap(), Strategy::Adaptive);
        assert!(parse_strategy("zzz").is_err());
    }

    #[test]
    fn explain_flag_parses() {
        let cmd = parse_args(argv("query Energy>2 --explain")).unwrap();
        match cmd {
            Command::Query { opts, .. } => assert!(opts.explain),
            other => panic!("{other:?}"),
        }
        assert!(!CommonOpts::default().explain);
    }

    #[test]
    fn explain_prints_operator_table() {
        let out = run(Command::Query {
            expr: "2.1 < Energy < 2.2".to_string(),
            opts: CommonOpts {
                particles: 50_000,
                servers: 4,
                strategy: Strategy::Adaptive,
                explain: true,
                ..CommonOpts::default()
            },
            get_data: None,
            queries: 1,
            batch_file: None,
            joint: None,
            join_server: false,
            leave_server: None,
        })
        .unwrap();
        assert!(out.contains("explain: strategy PDC-A"), "{out}");
        assert!(out.contains("est(lo..hi)"), "{out}");
        assert!(out.contains("constraint: Energy"), "{out}");
        // The hits line is unchanged by --explain.
        assert!(out.contains(" hits ("), "{out}");
    }

    #[test]
    fn batch_explain_prints_lead_query_table() {
        let out = run(Command::Query {
            expr: "2.1 < Energy < 2.2".to_string(),
            opts: CommonOpts {
                particles: 50_000,
                servers: 4,
                explain: true,
                ..CommonOpts::default()
            },
            get_data: None,
            queries: 4,
            batch_file: None,
            joint: None,
            join_server: false,
            leave_server: None,
        })
        .unwrap();
        assert!(out.contains("batch: 4 queries"), "{out}");
        assert!(out.contains("explain: strategy PDC-H"), "{out}");
    }

    #[test]
    fn bad_args_error() {
        assert!(parse_args(argv("query")).is_err());
        assert!(parse_args(argv("frobnicate")).is_err());
        assert!(parse_args(argv("demo --particles notanumber")).is_err());
        assert!(parse_args(argv("demo --servers")).is_err());
    }

    #[test]
    fn fault_flags_parse() {
        let cmd = parse_args(argv("demo --servers 8 --fault-seed 42 --kill-servers 3")).unwrap();
        match cmd {
            Command::Demo { opts } => {
                assert_eq!(opts.fault_seed, Some(42));
                assert_eq!(opts.kill_servers, 3);
                let plan = fault_plan(&opts).unwrap().unwrap();
                assert_eq!(plan.crashed_servers().len(), 3);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn corrupt_flags_parse_and_validate() {
        let cmd = parse_args(argv("demo --corrupt-regions 0.25 --corrupt-seed 99")).unwrap();
        match cmd {
            Command::Demo { opts } => {
                assert_eq!(opts.corrupt_regions, 0.25);
                assert_eq!(opts.corrupt_seed, Some(99));
                let plan = fault_plan(&opts).unwrap().unwrap();
                let spec = plan.corruption().unwrap();
                assert_eq!(spec.seed, 99);
                assert_eq!(spec.data_fraction, 0.25);
            }
            other => panic!("{other:?}"),
        }
        // Out-of-range fractions are rejected before the import runs.
        let cmd = parse_args(argv("demo --corrupt-regions 1.5")).unwrap();
        match cmd {
            Command::Demo { ref opts } => assert!(fault_plan(opts).is_err()),
            ref other => panic!("{other:?}"),
        }
        assert!(run(cmd).is_err());
    }

    #[test]
    fn query_with_corruption_matches_clean_run() {
        let base = CommonOpts { particles: 50_000, servers: 4, ..CommonOpts::default() };
        let clean = run(Command::Query {
            expr: "2.1 < Energy < 2.2".to_string(),
            opts: base.clone(),
            get_data: None,
            queries: 1,
            batch_file: None,
            joint: None,
            join_server: false,
            leave_server: None,
        })
        .unwrap();
        let corrupt = run(Command::Query {
            expr: "2.1 < Energy < 2.2".to_string(),
            opts: CommonOpts { corrupt_regions: 0.1, corrupt_seed: Some(7), ..base },
            get_data: None,
            queries: 1,
            batch_file: None,
            joint: None,
            join_server: false,
            leave_server: None,
        })
        .unwrap();
        let hits = |s: &str| {
            s.lines().find(|l| l.contains(" hits ")).unwrap().split(':').nth(1).unwrap()
                .trim().split(' ').next().unwrap().to_string()
        };
        assert_eq!(hits(&clean), hits(&corrupt), "clean: {clean}\ncorrupt: {corrupt}");
        assert!(corrupt.contains("integrity:"), "{corrupt}");
        assert!(!clean.contains("integrity:"), "{clean}");
    }

    #[test]
    fn scan_threads_parses() {
        let cmd = parse_args(argv("demo --scan-threads 1")).unwrap();
        match cmd {
            Command::Demo { opts } => assert_eq!(opts.scan_threads, 1),
            other => panic!("{other:?}"),
        }
        assert_eq!(CommonOpts::default().scan_threads, 0);
        assert!(parse_args(argv("demo --scan-threads nope")).is_err());
    }

    #[test]
    fn kill_all_servers_is_rejected() {
        let cmd = parse_args(argv("demo --servers 4 --kill-servers 4")).unwrap();
        match cmd {
            Command::Demo { ref opts } => assert!(fault_plan(opts).is_err()),
            ref other => panic!("{other:?}"),
        }
        assert!(run(cmd).is_err());
    }

    #[test]
    fn query_with_faults_matches_healthy_run() {
        let base = CommonOpts { particles: 50_000, servers: 4, ..CommonOpts::default() };
        let healthy = run(Command::Query {
            expr: "2.1 < Energy < 2.2".to_string(),
            opts: base.clone(),
            get_data: None,
            queries: 1,
            batch_file: None,
            joint: None,
            join_server: false,
            leave_server: None,
        })
        .unwrap();
        let faulty = run(Command::Query {
            expr: "2.1 < Energy < 2.2".to_string(),
            opts: CommonOpts { kill_servers: 2, ..base },
            get_data: None,
            queries: 1,
            batch_file: None,
            joint: None,
            join_server: false,
            leave_server: None,
        })
        .unwrap();
        // Same hit count despite two dead servers; fault report present.
        let hits = |s: &str| s.lines().find(|l| l.contains(" hits ")).unwrap().to_string();
        let hit_count = |s: &str| hits(s).split(':').nth(1).unwrap().trim().to_string();
        assert_eq!(
            hit_count(&healthy).split(' ').next(),
            hit_count(&faulty).split(' ').next(),
            "healthy: {healthy}\nfaulty: {faulty}"
        );
        assert!(faulty.contains("faults: servers"), "{faulty}");
        assert!(!healthy.contains("faults:"), "{healthy}");
    }

    #[test]
    fn end_to_end_query_command() {
        let cmd = parse_args(vec![
            "query".to_string(),
            "2.1 < Energy < 2.2".to_string(),
            "--particles".to_string(),
            "50000".to_string(),
            "--servers".to_string(),
            "4".to_string(),
            "--get-data".to_string(),
            "Energy".to_string(),
        ])
        .unwrap();
        let out = run(cmd).unwrap();
        assert!(out.contains("hits"), "{out}");
        assert!(out.contains("get_data(Energy)"), "{out}");
    }

    #[test]
    fn batch_flags_parse() {
        let cmd = parse_args(argv("query Energy>2 --queries 8 --batch-file qs.txt")).unwrap();
        match cmd {
            Command::Query { queries, batch_file, .. } => {
                assert_eq!(queries, 8);
                assert_eq!(batch_file.as_deref(), Some("qs.txt"));
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_args(argv("query E>1 --queries 0")).is_err());
        assert!(parse_args(argv("demo --queries 4")).is_err());
        assert!(parse_args(argv("demo --batch-file qs.txt")).is_err());
    }

    #[test]
    fn batch_query_reports_throughput_and_matches_single_run() {
        let opts = CommonOpts { particles: 50_000, servers: 4, ..CommonOpts::default() };
        let single = run(Command::Query {
            expr: "2.1 < Energy < 2.2".to_string(),
            opts: opts.clone(),
            get_data: None,
            queries: 1,
            batch_file: None,
            joint: None,
            join_server: false,
            leave_server: None,
        })
        .unwrap();
        let batched = run(Command::Query {
            expr: "2.1 < Energy < 2.2".to_string(),
            opts,
            get_data: None,
            queries: 8,
            batch_file: None,
            joint: None,
            join_server: false,
            leave_server: None,
        })
        .unwrap();
        assert!(batched.contains("batch: 8 queries"), "{batched}");
        assert!(batched.contains("queries/simulated-s"), "{batched}");
        assert!(batched.contains("artifact hit ratio"), "{batched}");
        // The per-query hits line is identical to the single run's.
        let hits = |s: &str| s.lines().find(|l| l.contains(" hits (")).unwrap().to_string();
        assert_eq!(hits(&single), hits(&batched), "single: {single}\nbatched: {batched}");
        assert!(!single.contains("batch:"), "{single}");
    }

    #[test]
    fn batch_file_missing_is_an_error() {
        let out = run(Command::Query {
            expr: "Energy > 2.0".to_string(),
            opts: CommonOpts { particles: 10_000, servers: 2, ..CommonOpts::default() },
            get_data: None,
            queries: 1,
            batch_file: Some("/nonexistent/queries.txt".to_string()),
            joint: None,
            join_server: false,
            leave_server: None,
        });
        assert!(out.is_err());
    }

    #[test]
    fn ingest_flags_parse() {
        let cmd = parse_args(argv("ingest --append-batches 3 --append-fraction 0.2")).unwrap();
        match cmd {
            Command::Ingest { expr, append_batches, append_fraction, .. } => {
                assert_eq!(expr, "2.1 < Energy < 2.2");
                assert_eq!(append_batches, 3);
                assert_eq!(append_fraction, 0.2);
            }
            other => panic!("{other:?}"),
        }
        // A positional expression and interleaved common options survive.
        let cmd =
            parse_args(argv("ingest Energy>2 --particles 1000 --append-batches 2")).unwrap();
        match cmd {
            Command::Ingest { expr, opts, append_batches, .. } => {
                assert_eq!(expr, "Energy>2");
                assert_eq!(opts.particles, 1000);
                assert_eq!(append_batches, 2);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_args(argv("ingest --append-batches 0")).is_err());
        assert!(parse_args(argv("ingest --append-fraction 1.5")).is_err());
        assert!(parse_args(argv("ingest --append-fraction 0")).is_err());
        assert!(parse_args(argv("query E>1 --append-batches 2")).is_err());
    }

    #[test]
    fn ingest_gate_passes_end_to_end() {
        let out = run(Command::Ingest {
            expr: "2.1 < Energy < 2.2".to_string(),
            opts: CommonOpts { particles: 40_000, servers: 4, ..CommonOpts::default() },
            append_batches: 3,
            append_fraction: 0.1,
        })
        .unwrap();
        // 3 appends → 4 interleaved checks + the post-maintenance rerun.
        assert!(out.contains("ingest gate: PASS (5/5"), "{out}");
        assert!(out.contains("append 1: +"), "{out}");
        assert!(out.contains("maintenance: rebuilt"), "{out}");
        assert!(!out.contains("MISMATCH"), "{out}");
    }

    #[test]
    fn ingest_gate_passes_under_faults() {
        let out = run(Command::Ingest {
            expr: "Energy > 2.0".to_string(),
            opts: CommonOpts {
                particles: 30_000,
                servers: 4,
                strategy: Strategy::Adaptive,
                fault_seed: Some(7),
                ..CommonOpts::default()
            },
            append_batches: 2,
            append_fraction: 0.15,
        })
        .unwrap();
        assert!(out.contains("ingest gate: PASS"), "{out}");
    }

    #[test]
    fn parse_errors_propagate() {
        let cmd = parse_args(vec![
            "query".to_string(),
            "NoSuchVar > 1".to_string(),
            "--particles".to_string(),
            "10000".to_string(),
        ])
        .unwrap();
        assert!(run(cmd).is_err());
    }

    #[test]
    fn replication_flags_parse() {
        let cmd =
            parse_args(argv("query Energy>2 --replicas 2 --join-server --leave-server 0"))
                .unwrap();
        match cmd {
            Command::Query { opts, join_server, leave_server, .. } => {
                assert_eq!(opts.replicas, 2);
                assert!(join_server);
                assert_eq!(leave_server, Some(0));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(CommonOpts::default().replicas, 1);
        // --replicas is a common flag; membership ops are query-only.
        assert!(parse_args(argv("demo --replicas 3")).is_ok());
        assert!(parse_args(argv("query E>1 --replicas 0")).is_err());
        assert!(parse_args(argv("demo --join-server")).is_err());
        assert!(parse_args(argv("demo --leave-server 1")).is_err());
    }

    #[test]
    fn replication_query_survives_kill_with_failover() {
        let base = CommonOpts { particles: 50_000, servers: 4, ..CommonOpts::default() };
        let query = |opts: CommonOpts| {
            // A query that touches every region, so the killed server's
            // crash probe actually fires mid-evaluation.
            run(Command::Query {
                expr: "Energy > 0".to_string(),
                opts,
                get_data: None,
                queries: 1,
                batch_file: None,
                joint: None,
                join_server: false,
                leave_server: None,
            })
            .unwrap()
        };
        let healthy = query(base.clone());
        let replicated =
            query(CommonOpts { replicas: 2, kill_servers: 1, fault_seed: Some(3), ..base });
        let hits = |s: &str| {
            s.lines().find(|l| l.contains(" hits (")).unwrap().split(':').nth(1).unwrap()
                .trim().split(' ').next().unwrap().to_string()
        };
        assert_eq!(hits(&healthy), hits(&replicated), "{healthy}\n{replicated}");
        assert!(replicated.contains("replication: k=2"), "{replicated}");
        assert!(replicated.contains("failed over to live replicas"), "{replicated}");
        assert!(replicated.contains("rebuild: redundancy restored"), "{replicated}");
        assert!(!healthy.contains("replication:"), "{healthy}");
    }

    #[test]
    fn replication_membership_smoke_preserves_results() {
        let out = run(Command::Query {
            expr: "2.1 < Energy < 2.2".to_string(),
            opts: CommonOpts {
                particles: 50_000,
                servers: 4,
                replicas: 2,
                ..CommonOpts::default()
            },
            get_data: None,
            queries: 1,
            batch_file: None,
            joint: None,
            join_server: true,
            leave_server: Some(0),
        })
        .unwrap();
        assert!(out.contains("membership: +server 4"), "{out}");
        assert!(out.contains("membership: -server 0"), "{out}");
        assert_eq!(out.matches("results unchanged: yes").count(), 2, "{out}");
        assert!(!out.contains("results unchanged: NO"), "{out}");
    }

    #[test]
    fn replication_membership_requires_replicas() {
        let out = run(Command::Query {
            expr: "Energy > 2.0".to_string(),
            opts: CommonOpts { particles: 10_000, servers: 2, ..CommonOpts::default() },
            get_data: None,
            queries: 1,
            batch_file: None,
            joint: None,
            join_server: true,
            leave_server: None,
        });
        assert!(out.unwrap_err().contains("replicas"), "needs --replicas >= 2");
    }

    #[test]
    fn replication_explain_shows_chosen_replica_per_slot() {
        let out = run(Command::Query {
            expr: "2.1 < Energy < 2.2".to_string(),
            opts: CommonOpts {
                particles: 50_000,
                servers: 4,
                replicas: 2,
                explain: true,
                ..CommonOpts::default()
            },
            get_data: None,
            queries: 1,
            batch_file: None,
            joint: None,
            join_server: false,
            leave_server: None,
        })
        .unwrap();
        assert!(out.contains("slot routes (slot\u{2192}chosen server):"), "{out}");
        assert!(out.contains("0\u{2192}0"), "healthy anchors serve their own slots: {out}");
    }

    #[test]
    fn serve_flags_parse() {
        let cmd = parse_args(argv(
            "serve --trace-file /tmp/t.trace --quantum-ms 2.5 --no-batching --servers 8",
        ))
        .unwrap();
        match cmd {
            Command::Serve { trace_file, opts, quantum_ms, no_batching } => {
                assert_eq!(trace_file, "/tmp/t.trace");
                assert_eq!(opts.servers, 8);
                assert_eq!(quantum_ms, 2.5);
                assert!(no_batching);
            }
            other => panic!("{other:?}"),
        }
        // Defaults.
        match parse_args(argv("serve --trace-file t")).unwrap() {
            Command::Serve { quantum_ms, no_batching, .. } => {
                assert_eq!(quantum_ms, 5.0);
                assert!(!no_batching);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_args(argv("serve")).unwrap_err().contains("--trace-file"));
        assert!(parse_args(argv("serve --trace-file t --quantum-ms 0"))
            .unwrap_err()
            .contains("--quantum-ms"));
    }

    #[test]
    fn serve_replays_trace_and_passes_equivalence_gate() {
        let path = std::env::temp_dir()
            .join(format!("pdc_cli_serve_{}.trace", std::process::id()));
        std::fs::write(
            &path,
            "# two declared tenants plus one auto-registered on first arrival\n\
             tenant alice weight=2 budget-ms=50 cap=16\n\
             tenant bob weight=1 budget-ms=50 cap=16\n\
             0.0 alice 2.1 < Energy < 2.2\n\
             0.1 bob 2.1 < Energy < 2.2\n\
             0.2 carol 2.1 < Energy < 2.2\n\
             5.0 alice 3.5 < Energy < 3.6\n\
             9.0 bob Energy > 2.0 AND 100 < x < 200\n",
        )
        .unwrap();
        let out = run(Command::Serve {
            trace_file: path.to_string_lossy().into_owned(),
            opts: CommonOpts { particles: 30_000, servers: 4, ..CommonOpts::default() },
            quantum_ms: 5.0,
            no_batching: false,
        })
        .unwrap();
        std::fs::remove_file(&path).ok();
        assert!(out.contains("serve: 5 arrival(s) from 3 tenant(s)"), "{out}");
        assert!(out.contains("tenant      alice"), "{out}");
        assert!(out.contains("tenant      carol"), "auto-registered tenant: {out}");
        // The three identical t~0 arrivals must fold into one shared-scan
        // group with late joins.
        assert!(out.contains("shared scan group:"), "{out}");
        let group_line =
            out.lines().find(|l| l.contains("late join(s)")).expect("group line");
        let late: u64 = group_line
            .split_whitespace()
            .zip(group_line.split_whitespace().skip(1))
            .find(|(_, next)| next.starts_with("late"))
            .and_then(|(n, _)| n.parse().ok())
            .expect("late join count");
        assert!(late >= 1, "{out}");
        assert!(out.contains("service equivalence: PASS"), "{out}");
        // Byte-identical across runs: the output is simulated-time only.
        std::fs::write(
            &path,
            "tenant alice weight=2 budget-ms=50 cap=16\n\
             0.0 alice 2.1 < Energy < 2.2\n",
        )
        .unwrap();
        let a = run(Command::Serve {
            trace_file: path.to_string_lossy().into_owned(),
            opts: CommonOpts { particles: 20_000, servers: 4, ..CommonOpts::default() },
            quantum_ms: 5.0,
            no_batching: false,
        })
        .unwrap();
        let b = run(Command::Serve {
            trace_file: path.to_string_lossy().into_owned(),
            opts: CommonOpts { particles: 20_000, servers: 4, ..CommonOpts::default() },
            quantum_ms: 5.0,
            no_batching: false,
        })
        .unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(a, b);
    }

    #[test]
    fn serve_rejects_malformed_traces() {
        let path = std::env::temp_dir()
            .join(format!("pdc_cli_serve_bad_{}.trace", std::process::id()));
        let serve = |body: &str| {
            std::fs::write(&path, body).unwrap();
            run(Command::Serve {
                trace_file: path.to_string_lossy().into_owned(),
                opts: CommonOpts { particles: 10_000, servers: 2, ..CommonOpts::default() },
                quantum_ms: 5.0,
                no_batching: false,
            })
        };
        assert!(serve("tenant a weight=x\n").unwrap_err().contains("weight"));
        assert!(serve("tenant a speed=9\n").unwrap_err().contains("unknown tenant attribute"));
        assert!(serve("0.0 alice\n").unwrap_err().contains("query expression"));
        assert!(serve("-1 alice Energy > 2\n").unwrap_err().contains("non-negative"));
        assert!(serve("# only comments\n").unwrap_err().contains("no arrivals"));
        std::fs::remove_file(&path).ok();
    }
}
