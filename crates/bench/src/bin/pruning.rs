//! Hierarchical-directory pruning benchmark: the fig. 3/4 conjunctive
//! 3-D window workload (`Energy > e AND x_lo < x < x_hi AND y_lo < y <
//! 0 AND 0 < z < 66`, the six multi-object catalog queries) on the
//! scaled VPIC world, comparing **1-D min/max pruning** (the historical
//! per-query walk over every region's histogram bounds) against the
//! **hierarchical region directory plus cross-variable joint bounds**.
//!
//! Joint grids are registered on the position-correlated pairs —
//! `(Energy, x)`, `(x, y)`, `(x, z)` — which is where the VPIC data's
//! correlation lives: `x` ramps monotonically across the array, so each
//! region covers a narrow spatial slab, while the energetic tail (and
//! the wide-spanning `y`/`z` cycles) recur in *every* region. 1-D
//! bounds therefore admit nearly all regions for the `Energy`/`y`/`z`
//! constraints; the joint grids kill the ones whose slab lies outside
//! the query's `x` window.
//!
//! Two measurements per query:
//! * **admitted-region rate** — regions surviving pruning, summed over
//!   the four constraints, 1-D vs hierarchical+joint (from the same
//!   [`pdc_query::DirectoryStats`] the `--explain` report prints);
//! * **planner wall-clock** — host time to resolve the candidate set:
//!   the O(regions) metadata walk vs the range→bin directory probe plus
//!   joint refinement, averaged over repeated resolutions.
//!
//! Pruning is advisory: the benchmark also runs every query under all
//! five strategies with the directory on and off and requires the
//! outcomes (selection, hits, and every simulated cost) bit-identical.
//!
//! Writes `BENCH_pruning.json` (path overridable as argv[1]). Particle
//! count via `PDC_PRUNING_N` (default 2M, the recorded baseline). Exits
//! non-zero if outcomes diverge or the total admitted-region count
//! fails the >=2x reduction gate (set `PDC_PRUNING_NO_ASSERT=1` to
//! record without gating).

use pdc_bench::{engine, import_vpic, Scale, VpicWorld, BEST_REGION};
use pdc_query::{
    directory_stats, EngineConfig, JointContext, MetaSnapshot, PdcQuery, QueryEngine,
    QueryOutcome, Strategy,
};
use pdc_types::{Interval, ObjectId, QueryOp};
use pdc_workloads::{multi_object_catalog, MultiObjectQuerySpec, VpicConfig, VpicData};
use std::fmt::Write as _;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

const DEFAULT_N: usize = 2 << 20;
const SERVERS: u32 = 8;
/// Candidate-set resolutions per timing sample (host wall-clock is
/// nanoseconds per resolution; averaging keeps the numbers stable).
const RESOLVE_REPS: u32 = 512;

const STRATEGIES: [Strategy; 5] = [
    Strategy::FullScan,
    Strategy::Histogram,
    Strategy::HistogramIndex,
    Strategy::SortedHistogram,
    Strategy::Adaptive,
];

/// The four constraints of one catalog query as `(object, interval)`
/// pairs — the same normalization the planner derives from the AST.
fn constraints(world: &VpicWorld, spec: &MultiObjectQuerySpec) -> Vec<(ObjectId, Interval)> {
    vec![
        (world.objects.energy, Interval::from_op(QueryOp::Gt, spec.energy_gt as f64)),
        (world.objects.x, Interval::open(spec.x_lo as f64, spec.x_hi as f64)),
        (world.objects.y, Interval::open(spec.y_lo as f64, spec.y_hi as f64)),
        (world.objects.z, Interval::open(spec.z_lo as f64, spec.z_hi as f64)),
    ]
}

fn build_query(world: &VpicWorld, spec: &MultiObjectQuerySpec) -> PdcQuery {
    PdcQuery::create(world.objects.energy, QueryOp::Gt, spec.energy_gt)
        .and(PdcQuery::range_open(world.objects.x, spec.x_lo, spec.x_hi))
        .and(PdcQuery::range_open(world.objects.y, spec.y_lo, spec.y_hi))
        .and(PdcQuery::range_open(world.objects.z, spec.z_lo, spec.z_hi))
}

/// An engine with host-side directory candidate resolution disabled
/// (the pruning *verdicts* — including joint bounds — are unchanged,
/// which is exactly what makes on/off bit-identity meaningful).
fn engine_without_directory(world: &VpicWorld, strategy: Strategy, scale: &Scale) -> QueryEngine {
    QueryEngine::new(
        Arc::clone(&world.odms),
        EngineConfig {
            strategy,
            num_servers: scale.servers,
            cache_bytes_per_server: 1 << 30,
            cost: scale.cost(),
            use_directory: false,
            ..Default::default()
        },
    )
}

fn outcomes_identical(a: &QueryOutcome, b: &QueryOutcome) -> bool {
    a.selection == b.selection
        && a.nhits == b.nhits
        && a.elapsed == b.elapsed
        && a.per_server == b.per_server
        && a.io == b.io
        && a.work == b.work
        && a.breakdown == b.breakdown
        && a.failed_servers == b.failed_servers
        && a.retry_rounds == b.retry_rounds
        && a.integrity == b.integrity
}

struct QueryRow {
    label: String,
    nhits: u64,
    admitted_1d: u64,
    admitted_joint: u64,
    resolve_1d_us: f64,
    resolve_dir_us: f64,
}

/// Mean host microseconds per 1-D candidate resolution: the historical
/// planner walk testing every region's histogram bounds.
fn time_resolve_1d(snap: &MetaSnapshot, cs: &[(ObjectId, Interval)]) -> f64 {
    let per_obj: Vec<_> = cs
        .iter()
        .map(|(obj, iv)| {
            let meta = snap.meta(*obj).unwrap();
            (snap.region_histograms(*obj).unwrap(), meta.num_regions(), *iv)
        })
        .collect();
    let start = Instant::now();
    let mut admitted = 0u64;
    for _ in 0..RESOLVE_REPS {
        for (hists, num_regions, iv) in &per_obj {
            for r in 0..*num_regions {
                if hists[r as usize].estimate_hits(black_box(iv)).upper > 0 {
                    admitted += 1;
                }
            }
        }
    }
    black_box(admitted);
    start.elapsed().as_secs_f64() * 1e6 / f64::from(RESOLVE_REPS)
}

/// Mean host microseconds per hierarchical resolution: the range→bin
/// directory probe plus the joint-bounds refinement of the candidates.
fn time_resolve_directory(snap: &MetaSnapshot, cs: &[(ObjectId, Interval)]) -> f64 {
    let per_obj: Vec<_> = cs
        .iter()
        .map(|(obj, iv)| {
            let meta = snap.meta(*obj).unwrap();
            let dir = snap.directory(*obj).expect("import builds a directory");
            let joint = JointContext::build(snap, *obj, cs);
            (meta, dir, joint, *iv)
        })
        .collect();
    let start = Instant::now();
    let mut admitted = 0u64;
    for _ in 0..RESOLVE_REPS {
        for (meta, dir, joint, iv) in &per_obj {
            let probe = dir.probe(black_box(iv));
            for &r in &probe.candidates {
                let alive = match joint {
                    Some(j) => !j.proves_empty(r, meta.region_span(r).len, iv),
                    None => true,
                };
                if alive {
                    admitted += 1;
                }
            }
        }
    }
    black_box(admitted);
    start.elapsed().as_secs_f64() * 1e6 / f64::from(RESOLVE_REPS)
}

fn main() {
    let out_path =
        std::env::args().nth(1).unwrap_or_else(|| "BENCH_pruning.json".to_string());
    let n: usize = std::env::var("PDC_PRUNING_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_N);
    let scale = Scale { particles: n, servers: SERVERS, ..Scale::from_env() };

    let data = VpicData::generate(&VpicConfig { particles: n, seed: scale.seed });
    let world = import_vpic(&data, BEST_REGION.0, true);
    let mut joint_bytes = 0u64;
    for (a, b) in [
        (world.objects.energy, world.objects.x),
        (world.objects.x, world.objects.y),
        (world.objects.x, world.objects.z),
    ] {
        joint_bytes += world.odms.register_joint_pair(a, b).expect("register joint pair");
    }
    let all_objects =
        [world.objects.energy, world.objects.x, world.objects.y, world.objects.z];
    let snap = MetaSnapshot::capture(&world.odms, &all_objects).expect("snapshot");

    let catalog = multi_object_catalog();
    let mut rows = Vec::new();
    let mut bit_identical = true;
    for spec in &catalog {
        let q = build_query(&world, spec);
        let cs = constraints(&world, spec);

        // Admitted-region rate, summed over the four constraints. The
        // same stats back the `--explain` directory report: 1-D admits
        // `regions_total - killed_1d`; the hierarchy admits `admitted`.
        let (mut admitted_1d, mut admitted_joint) = (0u64, 0u64);
        for (obj, iv) in &cs {
            let joint = JointContext::build(&snap, *obj, &cs);
            let st = directory_stats(&snap, *obj, iv, joint.as_deref())
                .expect("import builds a directory");
            admitted_1d += u64::from(st.regions_total - st.killed_1d);
            admitted_joint += u64::from(st.admitted);
        }

        // Bit-identity: every strategy, directory on vs off.
        let mut nhits = 0;
        for strategy in STRATEGIES {
            let on = engine(&world, strategy, &scale).run(&q).expect("query (directory on)");
            let off = engine_without_directory(&world, strategy, &scale)
                .run(&q)
                .expect("query (directory off)");
            if !outcomes_identical(&on, &off) {
                eprintln!(
                    "FAIL: {} E>{}: outcomes diverge with the directory on vs off",
                    strategy.label(),
                    spec.energy_gt,
                );
                bit_identical = false;
            }
            nhits = on.nhits;
        }

        rows.push(QueryRow {
            label: format!("E>{} x({},{})", spec.energy_gt, spec.x_lo, spec.x_hi),
            nhits,
            admitted_1d,
            admitted_joint,
            resolve_1d_us: time_resolve_1d(&snap, &cs),
            resolve_dir_us: time_resolve_directory(&snap, &cs),
        });
    }

    let total_1d: u64 = rows.iter().map(|r| r.admitted_1d).sum();
    let total_joint: u64 = rows.iter().map(|r| r.admitted_joint).sum();
    let ratio = total_1d as f64 / total_joint.max(1) as f64;
    let sum_1d_us: f64 = rows.iter().map(|r| r.resolve_1d_us).sum();
    let sum_dir_us: f64 = rows.iter().map(|r| r.resolve_dir_us).sum();

    let mut json = format!(
        "{{\n  \"particles\": {n},\n  \"servers\": {SERVERS},\n  \
         \"region_bytes\": {},\n  \
         \"workload\": \"fig4 conjunctive 3-D windows (Energy,x,y,z), 6 queries\",\n  \
         \"joint_pairs\": [\"(Energy,x)\", \"(x,y)\", \"(x,z)\"],\n  \
         \"joint_bytes\": {joint_bytes},\n  \"queries\": [\n",
        BEST_REGION.0,
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"query\": \"{}\", \"nhits\": {}, \"admitted_1d\": {}, \
             \"admitted_joint\": {}, \"resolve_1d_us\": {:.2}, \"resolve_dir_us\": {:.2}}}{}",
            r.label,
            r.nhits,
            r.admitted_1d,
            r.admitted_joint,
            r.resolve_1d_us,
            r.resolve_dir_us,
            if i + 1 < rows.len() { ",\n" } else { "\n" },
        );
    }
    let _ = write!(
        json,
        "  ],\n  \"total\": {{\"admitted_1d\": {total_1d}, \"admitted_joint\": {total_joint}, \
         \"reduction\": {ratio:.2}, \"resolve_1d_us\": {sum_1d_us:.2}, \
         \"resolve_dir_us\": {sum_dir_us:.2}}},\n  \"bit_identical\": {bit_identical}\n}}\n",
    );
    std::fs::write(&out_path, &json).expect("write benchmark json");

    for r in &rows {
        println!(
            "{:<22} hits {:>7}  admitted 1-D {:>4} -> joint {:>4}  resolve {:>8.2}us -> {:>6.2}us",
            r.label, r.nhits, r.admitted_1d, r.admitted_joint, r.resolve_1d_us, r.resolve_dir_us,
        );
    }
    println!(
        "total admitted: 1-D {total_1d} -> hierarchical+joint {total_joint} ({ratio:.2}x fewer); \
         resolve {sum_1d_us:.2}us -> {sum_dir_us:.2}us per pass"
    );
    println!("wrote {out_path}");

    let gate = std::env::var("PDC_PRUNING_NO_ASSERT").is_err();
    let mut ok = bit_identical;
    if total_1d < 2 * total_joint.max(1) {
        eprintln!(
            "FAIL: admitted regions dropped only {ratio:.2}x (1-D {total_1d} vs joint \
             {total_joint}); the gate requires >=2x"
        );
        ok = false;
    }
    if gate && !ok {
        std::process::exit(1);
    }
}
