//! K-way replication kill-matrix and elastic-membership benchmark.
//!
//! One engine per (strategy, k, kill) cell over the same imported VPIC
//! world: k ∈ {1, 2, 3} replicas per assignment slot, with and without
//! a server crash injected on the first data access. Every cell runs
//! the same 6-query series cold (the kill fires during query 1, so the
//! measured pass includes the failure-handling cost) and must produce
//! selections bit-identical to the unkilled unreplicated reference.
//!
//! The point being measured: under the classic single-home layout
//! (k = 1, PR 1 recovery) a kill forces a whole-batch rescan on one
//! survivor, while under k-way placement each of the dead server's
//! fine-grained slots fails over to a *distinct* live replica, so the
//! degradation flattens to roughly `1/spread`. The gate asserts the
//! killed series stays within 1.1x the unkilled series for every
//! strategy at k >= 2.
//!
//! A second scenario exercises elastic membership: join a fresh server
//! mid-series, then retire one of the originals — selections must be
//! unchanged at every step, and the live-migration volume is recorded.
//!
//! Writes `BENCH_replication.json` (path overridable as argv[1]).
//! Particle count via `PDC_REPLICATION_N` (default 983,040 = 240
//! regions of 16 KiB — slot count and region count align so healthy
//! per-server work is perfectly balanced). Exits non-zero on any gate
//! violation (set `PDC_REPLICATION_NO_ASSERT=1` to record without
//! gating).

use pdc_bench::{import_vpic, Scale};
use pdc_query::{EngineConfig, PdcQuery, QueryEngine, Strategy};
use pdc_server::FaultPlan;
use pdc_storage::SimDuration;
use pdc_types::{ObjectId, Selection};
use pdc_workloads::{VpicConfig, VpicData};
use std::fmt::Write as _;
use std::sync::Arc;

/// 240 regions of 16 KiB: one region per assignment slot at 16 servers
/// (spread 15), so a failover moves exactly one region to each backup.
const DEFAULT_N: usize = 240 * 4096;
const SERVERS: u32 = 16;
const REGION_BYTES: u64 = 16 << 10;
const VICTIM: u32 = 3;
const GATE: f64 = 1.10;

const STRATEGIES: [Strategy; 5] = [
    Strategy::FullScan,
    Strategy::Histogram,
    Strategy::HistogramIndex,
    Strategy::SortedHistogram,
    Strategy::Adaptive,
];

/// The series: a full-touch filter first (so the kill probe fires on
/// query 1 for every strategy), then narrow Energy tail windows and
/// wide spatial windows.
fn series(energy: ObjectId, x: ObjectId) -> Vec<PdcQuery> {
    let x_max = pdc_workloads::vpic::X_MAX as f32;
    vec![
        PdcQuery::create(energy, pdc_types::QueryOp::Gt, 0.0f32),
        PdcQuery::range_open(energy, 2.10f32, 2.15f32),
        PdcQuery::range_open(energy, 2.60f32, 2.65f32),
        PdcQuery::range_open(energy, 3.10f32, 3.15f32),
        PdcQuery::range_open(x, 0.05 * x_max, 0.38 * x_max),
        PdcQuery::range_open(x, 0.50 * x_max, 0.83 * x_max),
    ]
}

fn build(
    world: &pdc_bench::VpicWorld,
    scale: &Scale,
    strategy: Strategy,
    replicas: u32,
    kill: bool,
) -> QueryEngine {
    QueryEngine::new(
        Arc::clone(&world.odms),
        EngineConfig {
            strategy,
            num_servers: SERVERS,
            cache_bytes_per_server: 1 << 30,
            cost: scale.cost(),
            replicas,
            fault_plan: kill.then(|| FaultPlan::kill(&[VICTIM])),
            ..Default::default()
        },
    )
}

struct Cell {
    total: SimDuration,
    selections: Vec<Selection>,
    failover: SimDuration,
    recovery: SimDuration,
    rebuild_regions: u32,
    rebuild_bytes: u64,
}

/// Run the series cold and fold the outcomes.
fn measure(eng: &QueryEngine, qs: &[PdcQuery]) -> Cell {
    let mut cell = Cell {
        total: SimDuration::ZERO,
        selections: Vec::with_capacity(qs.len()),
        failover: SimDuration::ZERO,
        recovery: SimDuration::ZERO,
        rebuild_regions: 0,
        rebuild_bytes: 0,
    };
    for q in qs {
        let out = eng.run(q).expect("matrix cell must recover");
        if std::env::var("PDC_REPLICATION_VERBOSE").is_ok() {
            println!(
                "    q: {:>10.3} ms (failover {:.3} ms, recovery {:.3} ms, retry {}, io {} B)",
                out.elapsed.as_secs_f64() * 1e3,
                out.breakdown.failover.as_secs_f64() * 1e3,
                out.breakdown.recovery.as_secs_f64() * 1e3,
                out.retry_rounds,
                out.io.pfs_bytes_read,
            );
        }
        cell.total += out.elapsed;
        cell.failover += out.breakdown.failover;
        cell.recovery += out.breakdown.recovery;
        cell.rebuild_regions += out.rebuild_regions;
        cell.rebuild_bytes += out.rebuild_bytes;
        cell.selections.push(out.selection);
    }
    cell
}

fn main() {
    let out_path =
        std::env::args().nth(1).unwrap_or_else(|| "BENCH_replication.json".to_string());
    let n: usize = std::env::var("PDC_REPLICATION_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_N);
    let scale = Scale { particles: n, servers: SERVERS, ..Scale::from_env() };

    let data = VpicData::generate(&VpicConfig { particles: n, seed: scale.seed });
    let world = import_vpic(&data, REGION_BYTES, true);
    let qs = series(world.objects.energy, world.objects.x);

    let reference = measure(&build(&world, &scale, Strategy::Histogram, 1, false), &qs);

    let gate = std::env::var("PDC_REPLICATION_NO_ASSERT").is_err();
    let mut ok = true;
    let mut json = format!(
        "{{\n  \"particles\": {n},\n  \"servers\": {SERVERS},\n  \
         \"region_bytes\": {REGION_BYTES},\n  \"victim\": {VICTIM},\n  \
         \"queries\": {},\n  \"gate\": {GATE},\n  \"matrix\": {{\n",
        qs.len(),
    );
    for (si, &strategy) in STRATEGIES.iter().enumerate() {
        let _ = writeln!(json, "    \"{}\": {{", strategy.label());
        for (ki, k) in [1u32, 2, 3].into_iter().enumerate() {
            let clean = measure(&build(&world, &scale, strategy, k, false), &qs);
            let killed = measure(&build(&world, &scale, strategy, k, true), &qs);
            for (name, cell) in [("clean", &clean), ("killed", &killed)] {
                if cell.selections != reference.selections {
                    eprintln!("FAIL: {strategy} k={k} {name}: selections diverged");
                    ok = false;
                }
            }
            let degradation = killed.total.as_secs_f64() / clean.total.as_secs_f64();
            println!(
                "{:<7} k={k}: clean {:>9.3} ms, killed {:>9.3} ms ({degradation:.3}x) — \
                 failover {:.3} ms, recovery {:.3} ms, rebuilt {} regions",
                strategy.label(),
                clean.total.as_secs_f64() * 1e3,
                killed.total.as_secs_f64() * 1e3,
                killed.failover.as_secs_f64() * 1e3,
                killed.recovery.as_secs_f64() * 1e3,
                killed.rebuild_regions,
            );
            if k >= 2 {
                if degradation > GATE {
                    eprintln!(
                        "FAIL: {strategy} k={k}: kill degradation {degradation:.3}x \
                         exceeds {GATE}x"
                    );
                    ok = false;
                }
                if killed.recovery > SimDuration::ZERO {
                    eprintln!("FAIL: {strategy} k={k}: recovery lane charged under placement");
                    ok = false;
                }
            }
            let _ = write!(
                json,
                "      \"k{k}\": {{ \"clean_ms\": {:.3}, \"killed_ms\": {:.3}, \
                 \"degradation\": {degradation:.4}, \"failover_ms\": {:.3}, \
                 \"recovery_ms\": {:.3}, \"rebuild_regions\": {}, \"rebuild_bytes\": {} }}{}",
                clean.total.as_secs_f64() * 1e3,
                killed.total.as_secs_f64() * 1e3,
                killed.failover.as_secs_f64() * 1e3,
                killed.recovery.as_secs_f64() * 1e3,
                killed.rebuild_regions,
                killed.rebuild_bytes,
                if ki < 2 { ",\n" } else { "\n" },
            );
        }
        let _ = write!(json, "    }}{}", if si + 1 < STRATEGIES.len() { ",\n" } else { "\n" });
    }
    json.push_str("  },\n");

    // Elastic membership under a live series: join, then retire server 0.
    let eng = build(&world, &scale, Strategy::Histogram, 2, false);
    let before = measure(&eng, &qs);
    let joined = eng.join_server().expect("join");
    let mid = measure(&eng, &qs);
    let left = eng.leave_server(0).expect("leave");
    let after = measure(&eng, &qs);
    for (name, cell) in [("join", &mid), ("leave", &after)] {
        if cell.selections != before.selections || cell.selections != reference.selections {
            eprintln!("FAIL: membership {name}: selections diverged");
            ok = false;
        }
    }
    println!(
        "membership: +server {} ({} slots, {} regions, {} B), -server 0 ({} slots, {} regions, \
         {} B) — results unchanged",
        joined.server,
        joined.slots_changed,
        joined.regions_copied,
        joined.bytes_copied,
        left.slots_changed,
        left.regions_copied,
        left.bytes_copied,
    );
    let _ = write!(
        json,
        "  \"membership\": {{\n    \"join\": {{ \"server\": {}, \"slots_changed\": {}, \
         \"regions_copied\": {}, \"bytes_copied\": {} }},\n    \"leave\": {{ \"server\": 0, \
         \"slots_changed\": {}, \"regions_copied\": {}, \"bytes_copied\": {} }},\n    \
         \"results_unchanged\": {}\n  }}\n}}\n",
        joined.server,
        joined.slots_changed,
        joined.regions_copied,
        joined.bytes_copied,
        left.slots_changed,
        left.regions_copied,
        left.bytes_copied,
        mid.selections == before.selections && after.selections == before.selections,
    );
    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("wrote {out_path}");

    if gate && !ok {
        std::process::exit(1);
    }
}
