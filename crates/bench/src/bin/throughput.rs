//! Batch-throughput baseline: an overlapping query series evaluated
//! sequentially (`QueryEngine::run` in a loop, fresh engine) vs as one
//! admitted batch (`QueryEngine::run_batch`, fresh engine), at series
//! lengths 1 / 8 / 32. Results are asserted bit-identical; what differs
//! is host wall clock — the batch path shares region scans through the
//! fused prewarm kernel and serves repeated plans/artifacts from the
//! epoch-validated caches.
//!
//! Writes `BENCH_throughput.json` (path overridable as argv[1]).
//! Element count via `PDC_THROUGHPUT_N` (default 1M, the recorded
//! baseline). Exits non-zero if the 32-query batch speedup drops below
//! 3x (set `PDC_THROUGHPUT_NO_ASSERT=1` to record without gating).

use pdc_odms::{ImportOptions, Odms};
use pdc_query::{EngineConfig, PdcQuery, QueryEngine, Strategy};
use pdc_types::{ObjectId, TypedVec};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

const DEFAULT_N: usize = 1 << 20;
const REPS: usize = 3;
const SERVERS: u32 = 8;

fn build_world(n: usize) -> (Arc<Odms>, ObjectId) {
    // The same energy shape the equivalence tests use: a smooth bulk in
    // [0, 1.8] plus clustered tails. The series below queries the bulk,
    // so histogram pruning removes little and scans dominate — the
    // worst (and most realistic) case for a query storm.
    let energy: Vec<f32> = (0..n)
        .map(|i| {
            let base = ((i as f32 * 0.37).sin() + 1.0) * 0.9;
            if (3000..3400).contains(&(i % 8000)) {
                2.0 + ((i * 31) % 160) as f32 / 100.0
            } else {
                base
            }
        })
        .collect();
    let odms = Arc::new(Odms::new(64));
    let c = odms.create_container("throughput");
    let opts = ImportOptions { region_bytes: 64 << 10, ..Default::default() };
    let obj = odms.import_array(c, "energy", TypedVec::Float(energy), &opts).unwrap().object;
    (odms, obj)
}

/// `k` overlapping tail-window queries: 4 distinct shifted windows over
/// the clustered tail, repeated round-robin — the dashboard-refresh
/// shape the batch scheduler targets (distinct predicates share one
/// fused scan pass; repeats hit the caches outright). Every region
/// contains tail values, so histograms prune nothing and the sequential
/// baseline pays a full scan per query.
fn series(energy: ObjectId, k: usize) -> Vec<PdcQuery> {
    (0..k)
        .map(|i| {
            let j = (i % 4) as f32;
            let lo = 2.0 + j * 0.3;
            PdcQuery::range_open(energy, lo, lo + 0.25)
        })
        .collect()
}

fn engine(odms: &Arc<Odms>) -> QueryEngine {
    QueryEngine::new(
        Arc::clone(odms),
        EngineConfig {
            strategy: Strategy::Histogram,
            num_servers: SERVERS,
            ..Default::default()
        },
    )
}

struct Row {
    k: usize,
    sequential_ns: u128,
    batched_ns: u128,
    plan_hit_ratio: f64,
    artifact_hit_ratio: f64,
    prewarm_regions: u64,
    resident_reads: u64,
    region_touches: u64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.sequential_ns as f64 / self.batched_ns.max(1) as f64
    }

    fn json(&self) -> String {
        format!(
            "    \"{}\": {{\n      \"sequential_ms\": {:.2},\n      \"batched_ms\": {:.2},\n      \
             \"speedup\": {:.2},\n      \"plan_hit_ratio\": {:.3},\n      \
             \"artifact_hit_ratio\": {:.3},\n      \"prewarm_regions\": {},\n      \
             \"shared_reads_saved\": \"{}/{}\"\n    }}",
            self.k,
            self.sequential_ns as f64 / 1e6,
            self.batched_ns as f64 / 1e6,
            self.speedup(),
            self.plan_hit_ratio,
            self.artifact_hit_ratio,
            self.prewarm_regions,
            self.resident_reads,
            self.region_touches,
        )
    }
}

fn measure(odms: &Arc<Odms>, energy: ObjectId, k: usize) -> Row {
    let qs = series(energy, k);

    // Reference: the series one query at a time on a fresh engine
    // (every rep cold, best-of-REPS), collecting nhits for the identity
    // check below.
    let mut sequential_ns = u128::MAX;
    let mut seq_hits: Vec<u64> = Vec::new();
    for _ in 0..REPS {
        let eng = engine(odms);
        let t = Instant::now();
        let hits: Vec<u64> = qs.iter().map(|q| eng.run(q).unwrap().nhits).collect();
        sequential_ns = sequential_ns.min(t.elapsed().as_nanos());
        seq_hits = hits;
    }

    let mut batched_ns = u128::MAX;
    let mut stats = None;
    for _ in 0..REPS {
        let eng = engine(odms);
        let t = Instant::now();
        let batch = eng.run_batch(&qs).unwrap();
        batched_ns = batched_ns.min(t.elapsed().as_nanos());
        let batch_hits: Vec<u64> = batch.outcomes.iter().map(|o| o.nhits).collect();
        assert_eq!(seq_hits, batch_hits, "batched results diverged at k={k}");
        stats = Some(batch.stats);
    }
    let s = stats.unwrap();

    Row {
        k,
        sequential_ns,
        batched_ns,
        plan_hit_ratio: s.plan_hit_ratio(),
        artifact_hit_ratio: s.artifact_hit_ratio(),
        prewarm_regions: s.prewarm_regions,
        resident_reads: s.resident_reads,
        region_touches: s.region_touches,
    }
}

fn main() {
    let out_path =
        std::env::args().nth(1).unwrap_or_else(|| "BENCH_throughput.json".to_string());
    let n: usize = std::env::var("PDC_THROUGHPUT_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_N);

    let (odms, energy) = build_world(n);
    let rows: Vec<Row> = [1usize, 8, 32].iter().map(|&k| measure(&odms, energy, k)).collect();

    let mut json = format!(
        "{{\n  \"n_elements\": {n},\n  \"servers\": {SERVERS},\n  \"strategy\": \"PDC-H\",\n  \
         \"reps\": {REPS},\n  \"series\": {{\n"
    );
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(json, "{}{}", row.json(), if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark json");

    for row in &rows {
        println!(
            "k={:>2}: sequential {:>9.2} ms, batched {:>9.2} ms, speedup {:>5.2}x, \
             artifact hit ratio {:.1}%",
            row.k,
            row.sequential_ns as f64 / 1e6,
            row.batched_ns as f64 / 1e6,
            row.speedup(),
            row.artifact_hit_ratio * 100.0,
        );
    }
    println!("wrote {out_path}");

    let gate = rows.last().unwrap();
    if std::env::var("PDC_THROUGHPUT_NO_ASSERT").is_err() && gate.speedup() < 3.0 {
        eprintln!(
            "FAIL: 32-query batch speedup {:.2}x is below the 3x acceptance floor",
            gate.speedup()
        );
        std::process::exit(1);
    }
}
