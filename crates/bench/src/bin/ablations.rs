//! E7: ablations of the design choices DESIGN.md §6 calls out.
//!
//! 1. Histogram bin count — estimation tightness vs. metadata size.
//! 2. Pruning effectiveness per region size (the §III-B trade-off).
//! 3. Bitmap precision — index size vs. candidate-check frequency.
//! 4. Server-side caching on/off across the sequential query series.
//! 5. Selectivity-based evaluation ordering on/off (the §III-D2 claim;
//!    explains Fig. 4).
//! 6. Block index (related work \[26\]): min/max pruning alone vs. the
//!    paper's full-histogram pruning.
//! 7. Burst-buffer staging across the storage hierarchy (§II).
//!
//! Plus E8 — fault injection: the degradation curve as servers are
//! killed, per strategy, with result integrity checked against the
//! fault-free run.

use pdc_bench::*;
use pdc_bitmap::{BinnedBitmapIndex, BinningConfig, ValueDomain};
use pdc_histogram::{Histogram, HistogramConfig};
use pdc_query::{EngineConfig, PdcQuery, QueryEngine, Strategy};
use pdc_storage::SimDuration;
use pdc_types::{Interval, QueryOp};
use pdc_workloads::{multi_object_catalog, single_object_catalog};
use std::sync::Arc;

fn main() {
    let scale = Scale::from_env();
    println!("# E7 — design-choice ablations ({} particles)\n", scale.particles);
    let data = generate_vpic(&scale);

    ablation_bin_count(&scale, &data);
    ablation_pruning_by_region_size(&scale, &data);
    ablation_bitmap_precision(&scale, &data);
    ablation_caching(&scale, &data);
    ablation_ordering(&scale, &data);
    ablation_block_index(&scale, &data);
    ablation_staging(&scale, &data);
    ablation_fault_injection(&scale, &data);
}

/// E8. Fault injection: kill 0, 1, N/2, N−1 of the N servers and measure
/// the degradation per strategy. Hits must match the fault-free run
/// bit-for-bit — survivors absorb the dead servers' region assignments.
fn ablation_fault_injection(scale: &Scale, data: &pdc_workloads::VpicData) {
    use pdc_server::FaultPlan;
    println!("\n# E8 — fault injection ({} servers)\n", scale.servers);
    let world = import_vpic(data, BEST_REGION.0, true);
    let n = scale.servers;
    let spec = &single_object_catalog()[6];
    let q = PdcQuery::range_open(world.objects.energy, spec.lo, spec.hi);
    println!("query: {}<Energy<{}\n", spec.lo, spec.hi);
    let mut t = Table::new(&[
        "strategy",
        "killed",
        "hits",
        "elapsed",
        "recovery",
        "slowdown vs healthy",
        "rounds",
    ]);
    for strategy in
        [Strategy::FullScan, Strategy::Histogram, Strategy::HistogramIndex, Strategy::SortedHistogram]
    {
        let mut healthy = None;
        for kills in [0u32, 1, n / 2, n - 1] {
            let plan = (kills > 0).then(|| FaultPlan::kill_count(kills, n, scale.seed));
            let eng = QueryEngine::new(
                Arc::clone(&world.odms),
                EngineConfig {
                    strategy,
                    num_servers: n,
                    cache_bytes_per_server: 1 << 30,
                    cost: scale.cost(),
                    order_by_selectivity: true,
                    fault_plan: plan,
                    ..Default::default()
                },
            );
            let out = eng.run(&q).expect("query must survive while one server lives");
            let (healthy_hits, healthy_elapsed) =
                *healthy.get_or_insert((out.nhits, out.elapsed));
            assert_eq!(out.nhits, healthy_hits, "{strategy}: faults changed the result");
            t.row(vec![
                strategy.label().to_string(),
                format!("{kills}/{n}"),
                out.nhits.to_string(),
                fmt_dur(out.elapsed),
                fmt_dur(out.breakdown.recovery),
                format!("{:.2}x", out.elapsed.as_secs_f64() / healthy_elapsed.as_secs_f64()),
                out.retry_rounds.to_string(),
            ]);
        }
    }
    t.print();
    println!("\nkilled servers are detected from their error responses; their region slots are");
    println!("reassigned to the survivors with the same balanced-by-weight policy used for the");
    println!("initial assignment, so every row returns the fault-free hit count. The");
    println!("degradation curve is the price: retry round-trips plus the survivors' share.");
}

/// 6. Block index (ref. 26) vs. PDC-H: min/max blocks read vs.
///    histogram-pruned regions read, same granularity.
fn ablation_block_index(scale: &Scale, data: &pdc_workloads::VpicData) {
    println!("\n## 6. Block index (related work ref.26) vs. histogram pruning\n");
    use pdc_baseline::BlockIndex;
    let (region_bytes, _) = BEST_REGION;
    let block_elems = (region_bytes / 4) as usize;
    let idx = BlockIndex::build(&data.energy, block_elems);
    let world = import_vpic(data, region_bytes, false);
    let hists = world.odms.meta().region_histograms(world.objects.energy).expect("hists");
    let cost = scale.cost();
    let mut t = Table::new(&["query", "blocks read (min/max)", "regions read (histogram)", "total"]);
    for spec in single_object_catalog().iter().step_by(3) {
        let iv = Interval::open(spec.lo as f64, spec.hi as f64);
        let report = idx.query(&data.energy, &iv, &cost, scale.servers);
        let surviving = hists.iter().filter(|h| h.estimate_hits(&iv).upper > 0).count();
        t.row(vec![
            format!("{}<E<{}", spec.lo, spec.hi),
            report.blocks_read.to_string(),
            surviving.to_string(),
            report.blocks_total.to_string(),
        ]);
    }
    t.print();
    println!("\nhistogram pruning reads no more (usually fewer) partitions than min/max block");
    println!("pruning: occupied-bin tests reject range-straddling partitions min/max cannot.\n");
}

/// 7. Burst-buffer staging: the same query series cold from the PFS vs.
///    after staging the object into the node-local burst buffer.
fn ablation_staging(scale: &Scale, data: &pdc_workloads::VpicData) {
    println!("## 7. Burst-buffer staging (deep memory hierarchy, §II)\n");
    use pdc_storage::StorageTier;
    let mut t = Table::new(&["placement", "Fig. 3 series total (PDC-H, cold caches)"]);
    for (label, stage) in [("PFS (cold)", false), ("staged to burst buffer", true)] {
        let world = import_vpic(data, BEST_REGION.0, false);
        if stage {
            world
                .odms
                .stage_object(world.objects.energy, StorageTier::BurstBuffer)
                .expect("staging");
        }
        let eng = QueryEngine::new(
            Arc::clone(&world.odms),
            EngineConfig {
                strategy: Strategy::Histogram,
                num_servers: scale.servers,
                cache_bytes_per_server: 0, // isolate the tier effect
                cost: scale.cost(),
                order_by_selectivity: true,
                ..Default::default()
            },
        );
        let mut total = SimDuration::ZERO;
        for spec in single_object_catalog() {
            let q = PdcQuery::range_open(world.objects.energy, spec.lo, spec.hi);
            total += eng.run(&q).expect("query").elapsed;
        }
        t.row(vec![label.to_string(), fmt_dur(total)]);
    }
    t.print();
    println!("\nstaging moves the object one tier up the hierarchy; reads then avoid the");
    println!("shared PFS entirely — PDC's transparent data-movement value proposition.");
}

/// 1. Histogram bin count: average (upper−lower) selectivity-bound width
///    over the catalog, and the metadata footprint.
fn ablation_bin_count(scale: &Scale, data: &pdc_workloads::VpicData) {
    println!("## 1. Histogram bin count (paper uses 50-100)\n");
    let values: Vec<f64> = data.energy.iter().map(|&v| v as f64).collect();
    let mut t = Table::new(&["bins requested", "bins built", "avg bound width", "bytes"]);
    for nbins in [16usize, 32, 64, 128, 256] {
        let cfg = HistogramConfig { nbins_lower_bound: nbins, ..Default::default() };
        let h = Histogram::build(&values, &cfg).expect("histogram");
        let mut width_sum = 0.0;
        let mut count = 0;
        for spec in single_object_catalog() {
            let iv = Interval::open(spec.lo as f64, spec.hi as f64);
            let (lo, hi) = h.selectivity_bounds(&iv);
            width_sum += hi - lo;
            count += 1;
        }
        t.row(vec![
            nbins.to_string(),
            h.num_bins().to_string(),
            format!("{:.5}", width_sum / count as f64),
            h.size_bytes().to_string(),
        ]);
    }
    t.print();
    println!("\nmore bins tighten the estimate at linear metadata cost; ~64 bins already");
    println!("bounds the catalog's windows well — consistent with the paper's 50-100.\n");
    let _ = scale;
}

/// 2. Pruning effectiveness per region size: fraction of regions the
///    histogram eliminates per catalog query.
fn ablation_pruning_by_region_size(scale: &Scale, data: &pdc_workloads::VpicData) {
    println!("## 2. Region pruning effectiveness vs. region size\n");
    let mut t = Table::new(&["region size", "paper", "regions", "avg pruned", "avg survivors"]);
    for (region_bytes, paper_label) in REGION_SWEEP {
        let world = import_vpic(data, region_bytes, false);
        let hists =
            world.odms.meta().region_histograms(world.objects.energy).expect("histograms");
        let mut pruned_sum = 0usize;
        let mut queries = 0usize;
        for spec in single_object_catalog() {
            let iv = Interval::open(spec.lo as f64, spec.hi as f64);
            pruned_sum += hists.iter().filter(|h| h.estimate_hits(&iv).upper == 0).count();
            queries += 1;
        }
        let total = hists.len() * queries;
        let avg_pruned = pruned_sum as f64 / queries as f64;
        t.row(vec![
            fmt_bytes(region_bytes),
            paper_label.to_string(),
            hists.len().to_string(),
            format!("{:.1} ({:.0}%)", avg_pruned, 100.0 * pruned_sum as f64 / total as f64),
            format!("{:.1}", hists.len() as f64 - avg_pruned),
        ]);
    }
    t.print();
    println!("\nsmaller regions prune a larger fraction but leave more surviving regions in");
    println!("absolute terms to manage — the paper's region-size trade-off.\n");
    let _ = scale;
}

/// 3. Bitmap precision: index size and candidate-check frequency across
///    the catalog.
fn ablation_bitmap_precision(scale: &Scale, data: &pdc_workloads::VpicData) {
    println!("## 3. Bitmap index precision (paper uses precision = 2)\n");
    let region = (BEST_REGION.0 / 4) as usize;
    let values: Vec<f64> = data.energy.iter().map(|&v| v as f64).collect();
    let mut t = Table::new(&["precision", "index bytes", "% of data", "queries needing checks"]);
    for precision in [1u32, 2, 3] {
        let cfg = BinningConfig { precision, ..Default::default() };
        let mut bytes = 0u64;
        let mut any_candidates = vec![false; single_object_catalog().len()];
        for start in (0..values.len()).step_by(region) {
            let end = (start + region).min(values.len());
            let idx =
                BinnedBitmapIndex::build_with_domain(&values[start..end], &cfg, ValueDomain::F32)
                    .expect("index");
            bytes += idx.size_bytes_serialized();
            for (qi, spec) in single_object_catalog().iter().enumerate() {
                let iv = Interval::open(spec.lo as f64, spec.hi as f64);
                if idx.query(&iv).needs_candidate_check() {
                    any_candidates[qi] = true;
                }
            }
        }
        t.row(vec![
            precision.to_string(),
            fmt_bytes(bytes),
            format!("{:.1}%", 100.0 * bytes as f64 / (values.len() * 4) as f64),
            format!("{}/15", any_candidates.iter().filter(|&&c| c).count()),
        ]);
    }
    t.print();
    println!("\nprecision 1 is small but its decade-wide bins force raw-data candidate checks");
    println!("on the paper's 0.1-wide windows; precision 2 answers them index-only; precision");
    println!("3 pays more space for nothing the catalog needs — the paper's default.\n");
    let _ = scale;
}

/// 4. Server-side caching on/off across the sequential Fig. 3 series.
fn ablation_caching(scale: &Scale, data: &pdc_workloads::VpicData) {
    println!("## 4. Region caching across a sequential query series\n");
    let world = import_vpic(data, BEST_REGION.0, false);
    let mut t = Table::new(&["cache", "series total (PDC-H)", "PFS bytes read"]);
    for (label, cache_bytes) in [("64GB-scaled (on)", 1u64 << 30), ("off", 0)] {
        let eng = QueryEngine::new(
            Arc::clone(&world.odms),
            EngineConfig {
                strategy: Strategy::Histogram,
                num_servers: scale.servers,
                cache_bytes_per_server: cache_bytes,
                cost: scale.cost(),
                order_by_selectivity: true,
                ..Default::default()
            },
        );
        let mut total = SimDuration::ZERO;
        let mut pfs = 0u64;
        for spec in single_object_catalog() {
            let q = PdcQuery::range_open(world.objects.energy, spec.lo, spec.hi);
            let out = eng.run(&q).expect("query");
            total += out.elapsed;
            pfs += out.io.pfs_bytes_read;
        }
        t.row(vec![label.to_string(), fmt_dur(total), fmt_bytes(pfs)]);
    }
    t.print();
    println!("\nthe paper's observed speedup across the sequential series comes from exactly");
    println!("this cache: without it every query re-reads its surviving regions.\n");
}

/// 5. Selectivity-based ordering on/off for the Fig. 4 queries.
fn ablation_ordering(scale: &Scale, data: &pdc_workloads::VpicData) {
    println!("## 5. Selectivity-based evaluation ordering (the §III-D2 planner)\n");
    let world = import_vpic(data, BEST_REGION.0, true);
    let mut t = Table::new(&["ordering", "Fig. 4 series total (PDC-H)", "elements scanned"]);
    for (label, ordering) in [("on (paper)", true), ("off (user order)", false)] {
        let eng = QueryEngine::new(
            Arc::clone(&world.odms),
            EngineConfig {
                strategy: Strategy::Histogram,
                num_servers: scale.servers,
                cache_bytes_per_server: 1 << 30,
                cost: scale.cost(),
                order_by_selectivity: ordering,
                ..Default::default()
            },
        );
        let mut total = SimDuration::ZERO;
        let mut scanned = 0u64;
        for spec in multi_object_catalog() {
            // User writes the *least* selective condition first (x), as in
            // the paper's C example; the planner may reorder.
            let q = PdcQuery::range_open(world.objects.x, spec.x_lo, spec.x_hi)
                .and(PdcQuery::range_open(world.objects.y, spec.y_lo, spec.y_hi))
                .and(PdcQuery::range_open(world.objects.z, spec.z_lo, spec.z_hi))
                .and(PdcQuery::create(world.objects.energy, QueryOp::Gt, spec.energy_gt));
            eng.run(&q).expect("warm-up");
            let out = eng.run(&q).expect("query");
            total += out.elapsed;
            scanned += out.work.elements_scanned;
        }
        t.row(vec![label.to_string(), fmt_dur(total), scanned.to_string()]);
    }
    t.print();
    println!("\nevaluating the most selective constraint first shrinks the candidate set the");
    println!("later point-checks must touch — \"the execution order has a significant impact\".");
}
