//! Multi-tenant service-loop benchmark: open-loop Poisson arrival
//! traces replayed through `QueryEngine::serve` for three tenant mixes
//! (uniform, skewed heavy-tenant, adversarial flood). Reports per-tenant
//! p50/p95/p99 simulated latency and throughput, and gates on isolation:
//! admission control must bound the flood tenant's impact so the
//! well-behaved tenants' p99 under flood stays within 1.25x of the
//! uniform mix. Every served outcome is asserted bit-identical to a
//! sequential dispatch-order replay on a twin engine.
//!
//! Writes `BENCH_service.json` (path overridable as argv[1]). Element
//! count via `PDC_SERVICE_N` (default 1M). Set `PDC_SERVICE_NO_ASSERT=1`
//! to record without gating.

use pdc_odms::{ImportOptions, Odms};
use pdc_query::{
    percentile, poisson_times, splitmix64, Arrival, EngineConfig, PdcQuery, QueryEngine,
    ServiceConfig, Strategy, TenantSpec,
};
use pdc_storage::SimDuration;
use pdc_types::{ObjectId, TypedVec};
use std::fmt::Write as _;
use std::sync::Arc;

const DEFAULT_N: usize = 1 << 20;
const SERVERS: u32 = 8;
/// Per-tenant arrival rate of a well-behaved tenant, as a fraction of
/// the solo query service rate 1/E.
const WELL_LOAD: f64 = 0.25;
/// Simulated horizon, in units of the solo elapsed E.
const HORIZON_E: f64 = 120.0;
const P99_ISOLATION_LIMIT: f64 = 1.25;

fn build_world(n: usize) -> (Arc<Odms>, ObjectId) {
    // Same energy shape as the throughput bench: smooth bulk plus
    // clustered tails; the pool below queries the tail windows.
    let energy: Vec<f32> = (0..n)
        .map(|i| {
            let base = ((i as f32 * 0.37).sin() + 1.0) * 0.9;
            if (3000..3400).contains(&(i % 8000)) {
                2.0 + ((i * 31) % 160) as f32 / 100.0
            } else {
                base
            }
        })
        .collect();
    let odms = Arc::new(Odms::new(64));
    let c = odms.create_container("service");
    let opts = ImportOptions { region_bytes: 64 << 10, ..Default::default() };
    let obj = odms.import_array(c, "energy", TypedVec::Float(energy), &opts).unwrap().object;
    (odms, obj)
}

fn engine(odms: &Arc<Odms>) -> QueryEngine {
    QueryEngine::new(
        Arc::clone(odms),
        EngineConfig {
            strategy: Strategy::Histogram,
            num_servers: SERVERS,
            ..Default::default()
        },
    )
}

/// Six overlapping tail windows; tenants draw from the pool with a
/// seeded splitmix64 stream, so traces are deterministic.
fn pool(energy: ObjectId) -> Vec<PdcQuery> {
    (0..6)
        .map(|j| {
            let lo = 2.0 + j as f32 * 0.15;
            PdcQuery::range_open(energy, lo, lo + 0.25)
        })
        .collect()
}

struct TenantLoad<'a> {
    name: &'a str,
    weight: u32,
    /// Arrival rate as a multiple of the well-behaved rate.
    rate_x: f64,
    /// Admission budget in units of E (the solo elapsed).
    budget_e: f64,
    queue_cap: usize,
}

struct MixResult {
    name: String,
    tenants: Vec<pdc_query::TenantSummary>,
    well_p99: SimDuration,
    late_joins: u64,
    group_members: u64,
    prewarm_regions: u64,
    equivalent: bool,
    served: usize,
    span: SimDuration,
}

fn run_mix(
    odms: &Arc<Odms>,
    queries: &[PdcQuery],
    mix_name: &str,
    loads: &[TenantLoad],
    e_solo: SimDuration,
    seed: u64,
) -> MixResult {
    let e_secs = e_solo.as_secs_f64();
    let horizon = SimDuration::from_secs_f64(HORIZON_E * e_secs);
    let lambda_well = WELL_LOAD / e_secs;

    let specs: Vec<TenantSpec> = loads
        .iter()
        .map(|l| {
            TenantSpec::new(
                l.name,
                l.weight,
                SimDuration::from_secs_f64(l.budget_e * e_secs),
                l.queue_cap,
            )
        })
        .collect();
    let mut cfg = ServiceConfig::new(specs);
    cfg.quantum = e_solo.max(SimDuration::from_nanos(1));

    let mut arrivals: Vec<Arrival> = Vec::new();
    for (ti, l) in loads.iter().enumerate() {
        let tseed = seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(ti as u64 + 1));
        let times = poisson_times(tseed, lambda_well * l.rate_x, horizon);
        let mut pick = tseed.wrapping_add(1);
        for at in times {
            let q = queries[(splitmix64(&mut pick) % queries.len() as u64) as usize].clone();
            arrivals.push(Arrival { at, tenant: l.name.to_string(), query: q });
        }
    }

    // Warm both engines identically (one pass over the pool) so the
    // mixes compare steady-state latencies, not first-touch PFS charges
    // — and so the twin's replay sees the same warm state.
    let eng = engine(odms);
    for q in queries {
        eng.run(q).expect("warmup");
    }
    let report = eng.serve(&cfg, &arrivals).expect("serve");

    // Dispatch-order replay on a twin engine: scheduling may decide
    // *when*, never *what* — every outcome must be bit-identical.
    // (`arrival_index` refers to the original arrivals slice.)
    let twin = engine(odms);
    for q in queries {
        twin.run(q).expect("warmup");
    }
    let equivalent = report.served.iter().all(|s| {
        let solo = twin.run(&arrivals[s.arrival_index].query).expect("replay");
        solo.selection == s.outcome.selection
            && solo.nhits == s.outcome.nhits
            && solo.elapsed == s.outcome.elapsed
            && solo.breakdown == s.outcome.breakdown
    });

    let mut well: Vec<SimDuration> = report
        .served
        .iter()
        .filter(|s| loads[s.tenant as usize].rate_x <= 1.0)
        .map(|s| s.latency())
        .collect();
    well.sort_unstable();
    let g = report.group.expect("continuous batching on");

    MixResult {
        name: mix_name.to_string(),
        tenants: report.tenant_summaries(),
        well_p99: percentile(&well, 99.0),
        late_joins: g.late_joins,
        group_members: g.members,
        prewarm_regions: g.prewarm_regions,
        equivalent,
        served: report.served.len(),
        span: report.end_time,
    }
}

fn ms(d: SimDuration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let out_path =
        std::env::args().nth(1).unwrap_or_else(|| "BENCH_service.json".to_string());
    let n: usize = std::env::var("PDC_SERVICE_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_N);

    let (odms, energy) = build_world(n);
    let queries = pool(energy);

    // Calibrate the warm solo elapsed E: the arrival rates, budgets,
    // and quantum all scale from it. (Warm, because the mixes warm
    // their engines before serving.)
    let cal = engine(&odms);
    cal.run(&queries[0]).expect("calibration");
    let e_solo = cal.run(&queries[0]).expect("calibration").elapsed;

    let generous = 1000.0; // effectively unbounded budget, in units of E
    let mixes = [
        (
            "uniform",
            vec![
                TenantLoad { name: "well-a", weight: 1, rate_x: 1.0, budget_e: generous, queue_cap: 64 },
                TenantLoad { name: "well-b", weight: 1, rate_x: 1.0, budget_e: generous, queue_cap: 64 },
                TenantLoad { name: "well-c", weight: 1, rate_x: 1.0, budget_e: generous, queue_cap: 64 },
            ],
        ),
        (
            "skewed",
            vec![
                TenantLoad { name: "well-a", weight: 4, rate_x: 1.0, budget_e: generous, queue_cap: 64 },
                TenantLoad { name: "well-b", weight: 4, rate_x: 1.0, budget_e: generous, queue_cap: 64 },
                TenantLoad { name: "heavy", weight: 1, rate_x: 8.0, budget_e: 4.0, queue_cap: 16 },
            ],
        ),
        (
            "flood",
            vec![
                TenantLoad { name: "well-a", weight: 4, rate_x: 1.0, budget_e: generous, queue_cap: 64 },
                TenantLoad { name: "well-b", weight: 4, rate_x: 1.0, budget_e: generous, queue_cap: 64 },
                TenantLoad { name: "flood", weight: 1, rate_x: 16.0, budget_e: 1.5, queue_cap: 3 },
            ],
        ),
    ];

    let results: Vec<MixResult> = mixes
        .iter()
        .map(|(name, loads)| run_mix(&odms, &queries, name, loads, e_solo, 0x5EC7_1CE5))
        .collect();

    let uniform_well_p99 = results[0].well_p99;
    let flood_well_p99 = results[2].well_p99;
    let ratio = flood_well_p99.as_secs_f64() / uniform_well_p99.as_secs_f64().max(1e-12);
    let all_equivalent = results.iter().all(|r| r.equivalent);
    let all_late_joins = results.iter().all(|r| r.late_joins > 0);

    let mut json = format!(
        "{{\n  \"n_elements\": {n},\n  \"servers\": {SERVERS},\n  \"strategy\": \"PDC-H\",\n  \
         \"solo_elapsed_ms\": {:.3},\n  \"well_load_per_tenant\": {WELL_LOAD},\n  \
         \"horizon_in_solo_units\": {HORIZON_E},\n  \"mixes\": {{\n",
        ms(e_solo),
    );
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            json,
            "    \"{}\": {{\n      \"served\": {},\n      \"span_ms\": {:.3},\n      \
             \"well_p99_ms\": {:.3},\n      \"late_joins\": {},\n      \
             \"group_members\": {},\n      \"prewarm_regions\": {},\n      \
             \"replay_equivalent\": {},\n      \"tenants\": {{\n",
            r.name, r.served, ms(r.span), ms(r.well_p99), r.late_joins, r.group_members,
            r.prewarm_regions, r.equivalent,
        );
        for (j, t) in r.tenants.iter().enumerate() {
            let _ = write!(
                json,
                "        \"{}\": {{\n          \"submitted\": {},\n          \
                 \"completed\": {},\n          \"rejected\": {},\n          \
                 \"deferred\": {},\n          \"p50_ms\": {:.3},\n          \
                 \"p95_ms\": {:.3},\n          \"p99_ms\": {:.3},\n          \
                 \"throughput_qps\": {:.3}\n        }}{}",
                t.name, t.submitted, t.completed, t.rejected, t.deferred,
                ms(t.p50), ms(t.p95), ms(t.p99), t.throughput_qps,
                if j + 1 < r.tenants.len() { ",\n" } else { "\n" },
            );
        }
        let _ = write!(
            json,
            "      }}\n    }}{}",
            if i + 1 < results.len() { ",\n" } else { "\n" },
        );
    }
    let _ = write!(
        json,
        "  }},\n  \"gate\": {{\n    \"flood_over_uniform_well_p99\": {ratio:.3},\n    \
         \"limit\": {P99_ISOLATION_LIMIT},\n    \"pass\": {}\n  }}\n}}\n",
        ratio <= P99_ISOLATION_LIMIT && all_equivalent && all_late_joins,
    );
    std::fs::write(&out_path, &json).expect("write benchmark json");

    for r in &results {
        println!(
            "{:>8}: {:>3} served over {:>10}, well p99 {:>10}, {} late join(s), replay {}",
            r.name,
            r.served,
            r.span,
            r.well_p99,
            r.late_joins,
            if r.equivalent { "identical" } else { "DIVERGED" },
        );
        for t in &r.tenants {
            println!(
                "          {:>7}: {:>3}/{} done ({} rejected, {} deferred), p50 {} p95 {} p99 {}",
                t.name, t.completed, t.submitted, t.rejected, t.deferred, t.p50, t.p95, t.p99,
            );
        }
    }
    println!(
        "isolation: flood well-behaved p99 / uniform well-behaved p99 = {ratio:.3} \
         (limit {P99_ISOLATION_LIMIT})"
    );
    println!("wrote {out_path}");

    if std::env::var("PDC_SERVICE_NO_ASSERT").is_err() {
        if !all_equivalent {
            eprintln!("FAIL: a served outcome diverged from its sequential dispatch-order replay");
            std::process::exit(1);
        }
        if !all_late_joins {
            eprintln!("FAIL: a mix completed without any late shared-scan-group joins");
            std::process::exit(1);
        }
        if ratio > P99_ISOLATION_LIMIT {
            eprintln!(
                "FAIL: flood mix degrades well-behaved p99 by {ratio:.3}x \
                 (limit {P99_ISOLATION_LIMIT}x)"
            );
            std::process::exit(1);
        }
    }
}
