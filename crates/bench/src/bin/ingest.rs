//! E12: query latency and hit correctness under concurrent ingest.
//!
//! A store importing 90% of the dataset up front streams the remaining
//! 10% in as appends interleaved with a range-query series. For every
//! strategy, each interleaved query is verified bit-identical against a
//! fresh store imported whole at the extent the query planned against
//! (the sealed baseline), and the simulated latency of both runs is
//! recorded — the gap is the price of querying mid-ingest (stale sorted
//! replica, pending tail index, cold caches after every epoch bump).
//!
//! Writes `BENCH_ingest.json` (path overridable as argv[1]). Element
//! count via `PDC_INGEST_N` (default 1M). Exits non-zero if any
//! interleaved query disagrees with its sealed rerun — the correctness
//! gate — unless `PDC_INGEST_NO_ASSERT=1`.

use pdc_odms::{ImportOptions, Odms};
use pdc_query::{EngineConfig, PdcQuery, QueryEngine, Strategy};
use pdc_types::{ObjectId, TypedVec};
use std::fmt::Write as _;
use std::sync::Arc;

const DEFAULT_N: usize = 1 << 20;
const SERVERS: u32 = 8;
const APPENDS: usize = 4;
const APPEND_FRACTION: f64 = 0.10;

const STRATEGIES: [Strategy; 5] = [
    Strategy::FullScan,
    Strategy::Histogram,
    Strategy::HistogramIndex,
    Strategy::SortedHistogram,
    Strategy::Adaptive,
];

fn gen(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let base = ((i as f32 * 0.37).sin() + 1.0) * 0.9;
            if (3000..3400).contains(&(i % 8000)) {
                2.0 + ((i * 31) % 160) as f32 / 100.0
            } else {
                base
            }
        })
        .collect()
}

fn world(data: &[f32]) -> (Arc<Odms>, ObjectId) {
    let odms = Arc::new(Odms::new(64));
    let c = odms.create_container("ingest");
    let opts = ImportOptions {
        region_bytes: 128 << 10,
        build_index: true,
        build_sorted: true,
        ..Default::default()
    };
    let obj = odms.import_array(c, "energy", TypedVec::Float(data.to_vec()), &opts).unwrap().object;
    (odms, obj)
}

fn engine(odms: &Arc<Odms>, strategy: Strategy) -> QueryEngine {
    QueryEngine::new(
        Arc::clone(odms),
        EngineConfig { strategy, num_servers: SERVERS, ..Default::default() },
    )
}

struct Row {
    strategy: Strategy,
    queries: usize,
    interleaved_sim_ms: f64,
    sealed_sim_ms: f64,
    appended_elems: u64,
    maintenance_bytes: u64,
    hits_match: bool,
}

fn measure(data: &[f32], initial: usize, chunk: usize) -> Vec<Row> {
    let mut rows = Vec::new();
    for strategy in STRATEGIES {
        let (odms, obj) = world(&data[..initial]);
        let eng = engine(&odms, strategy);
        let q = PdcQuery::range_open(obj, 2.1f32, 2.2f32);
        let mut interleaved_sim = 0.0f64;
        let mut sealed_sim = 0.0f64;
        let mut hits_match = true;
        let mut appended = 0u64;
        for k in 0..=APPENDS {
            let out = eng.run(&q).unwrap();
            interleaved_sim += out.elapsed.as_secs_f64() * 1e3;
            // The sealed baseline at the extent this query planned over.
            let extent = out.planned_elements as usize;
            let (sealed, sobj) = world(&data[..extent]);
            let seng = engine(&sealed, strategy);
            let sq = PdcQuery::range_open(sobj, 2.1f32, 2.2f32);
            let sout = seng.run(&sq).unwrap();
            sealed_sim += sout.elapsed.as_secs_f64() * 1e3;
            if out.nhits != sout.nhits || out.selection != sout.selection {
                hits_match = false;
                eprintln!(
                    "MISMATCH: {strategy} at extent {extent}: interleaved {} vs sealed {}",
                    out.nhits, sout.nhits
                );
            }
            if k < APPENDS {
                let lo = initial + k * chunk;
                let hi = (lo + chunk).min(data.len());
                let rep = eng
                    .odms()
                    .append_array(obj, &TypedVec::Float(data[lo..hi].to_vec()))
                    .unwrap();
                appended += rep.appended_elems;
            }
        }
        let maint = odms.run_deferred_maintenance().unwrap();
        // Post-maintenance rerun must still agree with the final sealed
        // extent (deferred rebuilds never change results).
        let after = eng.run(&q).unwrap();
        let (sealed, sobj) = world(&data[..after.planned_elements as usize]);
        let sout = engine(&sealed, strategy)
            .run(&PdcQuery::range_open(sobj, 2.1f32, 2.2f32))
            .unwrap();
        if after.selection != sout.selection {
            hits_match = false;
            eprintln!("MISMATCH: {strategy} after deferred maintenance");
        }
        rows.push(Row {
            strategy,
            queries: APPENDS + 1,
            interleaved_sim_ms: interleaved_sim,
            sealed_sim_ms: sealed_sim,
            appended_elems: appended,
            maintenance_bytes: maint.bytes_written,
            hits_match,
        });
    }
    rows
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_ingest.json".to_string());
    let n: usize = std::env::var("PDC_INGEST_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_N);
    let append_total = ((n as f64 * APPEND_FRACTION) as usize).max(APPENDS);
    let initial = n - append_total;
    let chunk = append_total / APPENDS;
    let data = gen(n);

    let rows = measure(&data, initial, chunk);
    let all_match = rows.iter().all(|r| r.hits_match);

    let mut json = format!(
        "{{\n  \"n_elements\": {n},\n  \"initial_elements\": {initial},\n  \
         \"appends\": {APPENDS},\n  \"append_fraction\": {APPEND_FRACTION},\n  \
         \"servers\": {SERVERS},\n  \"correctness_gate\": \"{}\",\n  \"strategies\": {{\n",
        if all_match { "PASS" } else { "FAIL" }
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    \"{}\": {{\n      \"queries\": {},\n      \"interleaved_sim_ms\": {:.3},\n      \
             \"sealed_sim_ms\": {:.3},\n      \"ingest_overhead\": {:.3},\n      \
             \"appended_elems\": {},\n      \"maintenance_bytes\": {},\n      \
             \"hits_match\": {}\n    }}{}",
            r.strategy.label(),
            r.queries,
            r.interleaved_sim_ms,
            r.sealed_sim_ms,
            r.interleaved_sim_ms / r.sealed_sim_ms.max(1e-9),
            r.appended_elems,
            r.maintenance_bytes,
            r.hits_match,
            if i + 1 < rows.len() { ",\n" } else { "\n" },
        );
    }
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark json");

    println!("# E12 — query latency and correctness under concurrent ingest ({n} elements)\n");
    for r in &rows {
        println!(
            "{:>7}: {} queries mid-ingest, simulated {:>9.3} ms vs sealed {:>9.3} ms \
             ({:.2}x), hits match: {}",
            r.strategy.label(),
            r.queries,
            r.interleaved_sim_ms,
            r.sealed_sim_ms,
            r.interleaved_sim_ms / r.sealed_sim_ms.max(1e-9),
            r.hits_match,
        );
    }
    println!("wrote {out_path}");

    if std::env::var("PDC_INGEST_NO_ASSERT").is_err() && !all_match {
        eprintln!("FAIL: interleaved queries diverged from the sealed baseline");
        std::process::exit(1);
    }
}
