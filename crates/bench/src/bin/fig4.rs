//! Fig. 4: multi-object (energy, x, y, z) query performance at the best
//! region size (the paper's 32 MB ↔ our scaled equivalent).
//!
//! Six conjunctive queries between the paper's endpoints; all four PDC
//! strategies plus the HDF5-F baseline. The paper's observations to
//! reproduce: everything is slower than the single-object queries (4
//! objects to read); the sorted strategy wins only while `Energy` is the
//! most selective constraint — for the last queries the planner evaluates
//! `x` first and `PDC-SH` degenerates to `PDC-H`; the index is fast for
//! hits but pays on `get data`.

use pdc_baseline::Hdf5Baseline;
use pdc_bench::*;
use pdc_query::{PdcQuery, QueryOutcome, Strategy};
use pdc_types::{Interval, QueryOp};
use pdc_workloads::{multi_object_catalog, MultiObjectQuerySpec};

fn build_query(world: &VpicWorld, spec: &MultiObjectQuerySpec) -> PdcQuery {
    PdcQuery::create(world.objects.energy, QueryOp::Gt, spec.energy_gt)
        .and(PdcQuery::range_open(world.objects.x, spec.x_lo, spec.x_hi))
        .and(PdcQuery::range_open(world.objects.y, spec.y_lo, spec.y_hi))
        .and(PdcQuery::range_open(world.objects.z, spec.z_lo, spec.z_hi))
}

fn main() {
    let scale = Scale::from_env();
    let (region_bytes, paper_label) = BEST_REGION;
    println!(
        "# Fig. 4 — multi-object (energy,x,y,z) queries, {} particles, {} servers, region {} (paper {})\n",
        scale.particles,
        scale.servers,
        fmt_bytes(region_bytes),
        paper_label
    );
    let data = generate_vpic(&scale);
    let world = import_vpic(&data, region_bytes, true);
    let catalog = multi_object_catalog();
    let baseline = Hdf5Baseline::new(scale.cost(), scale.servers);

    let strategies = [
        Strategy::FullScan,
        Strategy::Histogram,
        Strategy::HistogramIndex,
        Strategy::SortedHistogram,
    ];
    let engines: Vec<_> = strategies.iter().map(|&s| engine(&world, s, &scale)).collect();

    // Warm-up pass (the paper reports best-of-5 = warm numbers).
    for spec in &catalog {
        for eng in &engines {
            let q = build_query(&world, spec);
            let out = eng.run(&q).expect("warm-up");
            eng.get_data(&out, world.objects.energy).expect("warm-up get");
        }
    }

    let mut table = Table::new(&[
        "query",
        "nhits",
        "selectivity",
        "HDF5-F",
        "PDC-F query",
        "PDC-H query",
        "PDC-H get",
        "PDC-HI query",
        "PDC-HI get",
        "PDC-SH query",
        "PDC-SH get",
    ]);
    let mut sh_like_h = 0u32;
    for (qi, spec) in catalog.iter().enumerate() {
        // HDF5-F: full scan of all four variables, amortized over the 6
        // queries as in the paper.
        let vars: Vec<(&[f32], Interval)> = vec![
            (&data.energy, Interval::from_op(QueryOp::Gt, spec.energy_gt as f64)),
            (&data.x, Interval::open(spec.x_lo as f64, spec.x_hi as f64)),
            (&data.y, Interval::open(spec.y_lo as f64, spec.y_hi as f64)),
            (&data.z, Interval::open(spec.z_lo as f64, spec.z_hi as f64)),
        ];
        let h5 = baseline.full_scan_conjunction(&vars);
        let h5_amortized = h5.read_elapsed / catalog.len() as u64 + h5.scan_elapsed;

        let q = build_query(&world, spec);
        let mut outs: Vec<(QueryOutcome, _)> = Vec::new();
        for eng in &engines {
            let out = eng.run(&q).expect("query");
            let get = eng.get_data(&out, world.objects.energy).expect("get_data");
            outs.push((out, get));
        }
        let nhits = outs[0].0.nhits;
        assert!(
            outs.iter().all(|(o, _)| o.nhits == nhits),
            "strategies disagree on query {qi}"
        );
        assert_eq!(nhits, h5.nhits, "baseline disagrees on query {qi}");
        let sel = nhits as f64 / scale.particles as f64;
        table.row(vec![
            format!("Q{} E>{}", qi + 1, spec.energy_gt),
            nhits.to_string(),
            fmt_sel(sel),
            fmt_dur(h5_amortized),
            fmt_dur(outs[0].0.elapsed),
            fmt_dur(outs[1].0.elapsed),
            fmt_dur(outs[1].1.elapsed),
            fmt_dur(outs[2].0.elapsed),
            fmt_dur(outs[2].1.elapsed),
            fmt_dur(outs[3].0.elapsed),
            fmt_dur(outs[3].1.elapsed),
        ]);
        // The Fig. 4 anomaly: when energy is no longer the most selective
        // constraint, the sorted strategy's time approaches histogram's.
        let (sh, h) = (outs[3].0.elapsed, outs[1].0.elapsed);
        if sh.as_secs_f64() > 0.7 * h.as_secs_f64() {
            sh_like_h += 1;
        }
    }
    table.print();
    println!(
        "\nshape: PDC-SH ~= PDC-H on {sh_like_h}/6 queries (paper: the last queries, where the \
         planner evaluates x first and the energy sort stops helping)"
    );
}
