//! Fig. 3(a–f): single-object (Energy) query performance vs. selectivity,
//! across region sizes and strategies.
//!
//! For each region size the harness imports the energy object, then runs
//! the 15-query catalog **sequentially** (caching effects included, as in
//! the paper) under each strategy, reporting per-query `query time` and
//! `get data time`. `HDF5-F` and `PDC-F` report amortized full-scan time
//! ("[total read time / number of queries] + full scan time").

use pdc_baseline::Hdf5Baseline;
use pdc_bench::*;
use pdc_query::{PdcQuery, Strategy};
use pdc_storage::SimDuration;
use pdc_workloads::single_object_catalog;

fn main() {
    let scale = Scale::from_env();
    println!("# Fig. 3 — single-object (Energy) queries, {} particles, {} servers\n", scale.particles, scale.servers);
    let data = generate_vpic(&scale);
    let catalog = single_object_catalog();

    // HDF5-F is layout-dependent, not region-size dependent: compute once.
    let baseline = Hdf5Baseline::new(scale.cost(), scale.servers);

    for (region_bytes, paper_label) in REGION_SWEEP {
        println!(
            "\n## Region size {} (paper: {})\n",
            fmt_bytes(region_bytes),
            paper_label
        );
        let world = import_vpic(&data, region_bytes, false);

        // --- Full-scan rows (amortized over the 15 queries) ---
        // HDF5-F: read the whole object once, scan per query.
        let any_iv = pdc_types::Interval::open(2.1, 2.2);
        let h5 = baseline.full_scan_conjunction(&[(&data.energy, any_iv)]);
        let h5_amortized = h5.read_elapsed / catalog.len() as u64 + h5.scan_elapsed;

        // PDC-F: sequential query series against one engine; the first
        // query pays the (aggregated) read, later ones hit the cache.
        let f_engine = engine(&world, Strategy::FullScan, &scale);
        let mut f_total = SimDuration::ZERO;
        for spec in &catalog {
            let q = PdcQuery::range_open(world.objects.energy, spec.lo, spec.hi);
            f_total += f_engine.run(&q).expect("PDC-F query").elapsed;
        }
        let f_amortized = f_total / catalog.len() as u64;

        // --- Optimized strategies: per-query rows ---
        // The paper reports the best of >=5 runs (warm caches); we run the
        // series once to warm up, then report the second pass.
        let mut table = Table::new(&[
            "query",
            "selectivity",
            "nhits",
            "PDC-H query",
            "PDC-H get",
            "PDC-HI query",
            "PDC-HI get",
            "PDC-SH query",
            "PDC-SH get",
        ]);
        let engines = [
            engine(&world, Strategy::Histogram, &scale),
            engine(&world, Strategy::HistogramIndex, &scale),
            engine(&world, Strategy::SortedHistogram, &scale),
        ];
        // Warm-up pass.
        for spec in &catalog {
            let q = PdcQuery::range_open(world.objects.energy, spec.lo, spec.hi);
            for eng in &engines {
                let out = eng.run(&q).expect("warm-up query");
                eng.get_data(&out, world.objects.energy).expect("warm-up get_data");
            }
        }
        // Reported pass.
        let mut sums = [[SimDuration::ZERO; 2]; 3];
        for spec in &catalog {
            let q = PdcQuery::range_open(world.objects.energy, spec.lo, spec.hi);
            let mut cells = vec![
                format!("{}<E<{}", spec.lo, spec.hi),
                fmt_sel(spec.paper_selectivity),
            ];
            for (i, eng) in engines.iter().enumerate() {
                let out = eng.run(&q).expect("query");
                let get = eng.get_data(&out, world.objects.energy).expect("get_data");
                if i == 0 {
                    cells.push(out.nhits.to_string());
                }
                cells.push(fmt_dur(out.elapsed));
                cells.push(fmt_dur(get.elapsed));
                sums[i][0] += out.elapsed;
                sums[i][1] += get.elapsed;
            }
            table.row(cells);
        }
        println!("HDF5-F amortized query time: {}  (read {} / 15 + scan {})",
            fmt_dur(h5_amortized), fmt_dur(h5.read_elapsed), fmt_dur(h5.scan_elapsed));
        println!("PDC-F  amortized query time: {}\n", fmt_dur(f_amortized));
        table.print();

        // Shape assertions the paper reports for this figure.
        let mean = |i: usize| sums[i][0] / catalog.len() as u64;
        println!("\nshape: PDC-F/HDF5-F speedup {:.2}x (paper: up to 2x)", speedup(h5_amortized, f_amortized));
        println!("shape: PDC-H  mean speedup over PDC-F: {:.1}x (paper: 2-3x)", speedup(f_amortized, mean(0)));
        println!("shape: PDC-HI mean speedup over PDC-F: {:.1}x (paper: 4-14x)", speedup(f_amortized, mean(1)));
        println!("shape: PDC-SH mean speedup over PDC-F: {:.1}x (paper: best, up to 1000x at 0.0004%)", speedup(f_amortized, mean(2)));
    }
}
