//! E5: the §V query catalog — paper-reported vs. achieved selectivity on
//! the calibrated synthetic datasets.

use pdc_bench::*;
use pdc_types::Interval;
use pdc_workloads::{
    boss_flux_catalog, multi_object_catalog, single_object_catalog, BossData, VpicData,
};

fn main() {
    let scale = Scale::from_env();
    println!("# E5 — query catalog: paper targets vs. achieved selectivities\n");
    println!("{} particles, seed {:#x}\n", scale.particles, scale.seed);
    let data = generate_vpic(&scale);
    let n = data.len() as f64;

    println!("## Single-object queries (Fig. 3's 15 windows)\n");
    let mut t = Table::new(&["query", "paper", "achieved", "nhits", "ratio"]);
    for spec in single_object_catalog() {
        let iv = Interval::open(spec.lo as f64, spec.hi as f64);
        let achieved = VpicData::exact_selectivity(&data.energy, &iv);
        let ratio = if spec.paper_selectivity > 0.0 { achieved / spec.paper_selectivity } else { f64::NAN };
        t.row(vec![
            format!("{}<E<{}", spec.lo, spec.hi),
            fmt_sel(spec.paper_selectivity),
            fmt_sel(achieved),
            format!("{}", (achieved * n) as u64),
            format!("{ratio:.2}"),
        ]);
    }
    t.print();

    println!("\n## Multi-object queries (Fig. 4's 6 conjunctions)\n");
    let mut t = Table::new(&["query", "paper", "achieved", "nhits"]);
    for (i, spec) in multi_object_catalog().iter().enumerate() {
        let hits = (0..data.len())
            .filter(|&k| {
                data.energy[k] > spec.energy_gt
                    && data.x[k] > spec.x_lo
                    && data.x[k] < spec.x_hi
                    && data.y[k] > spec.y_lo
                    && data.y[k] < spec.y_hi
                    && data.z[k] > spec.z_lo
                    && data.z[k] < spec.z_hi
            })
            .count();
        let paper = if spec.paper_selectivity.is_nan() {
            "(unstated)".to_string()
        } else {
            fmt_sel(spec.paper_selectivity)
        };
        t.row(vec![
            format!(
                "Q{}: E>{} ∧ {}<x<{} ∧ {}<y<{} ∧ {}<z<{}",
                i + 1,
                spec.energy_gt,
                spec.x_lo,
                spec.x_hi,
                spec.y_lo,
                spec.y_hi,
                spec.z_lo,
                spec.z_hi
            ),
            paper,
            fmt_sel(hits as f64 / n),
            hits.to_string(),
        ]);
    }
    t.print();

    println!("\n## BOSS flux sweep (Fig. 5's data conditions)\n");
    let mut t = Table::new(&["target selectivity", "flux bound"]);
    for spec in boss_flux_catalog() {
        t.row(vec![
            fmt_sel(spec.selectivity),
            format!("0 < flux < {:.3}", BossData::flux_bound_for_selectivity(spec.selectivity)),
        ]);
    }
    t.print();
}
