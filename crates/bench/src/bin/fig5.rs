//! Fig. 5: queries with both metadata and data constraints on the
//! BOSS-like catalog (§VI-C).
//!
//! The metadata condition (`RADEG=153.17 AND DECDEG=23.06`) selects
//! exactly 1000 objects; the data condition on `flux` sweeps 11 %–65 %
//! selectivity. The paper's observations: PDC resolves the metadata
//! condition "instantly" from its metadata service, while HDF5 must
//! traverse every file; and because each BOSS object is a single region
//! that is read wholly, PDC's total time barely varies with the data
//! selectivity.

use pdc_baseline::Hdf5Baseline;
use pdc_bench::*;
use pdc_odms::{ImportOptions, Odms};
use pdc_query::{EngineConfig, QueryEngine, Strategy};
use pdc_types::Interval;
use pdc_workloads::{boss_flux_catalog, BossConfig, BossData};
use std::sync::Arc;

fn main() {
    let scale = Scale::from_env();
    println!(
        "# Fig. 5 — metadata + data queries on the BOSS catalog, {} objects, {} servers\n",
        scale.boss_objects, scale.servers
    );
    let odms = Arc::new(Odms::new(64));
    let cfg = BossConfig {
        objects: scale.boss_objects,
        matching_objects: 1_000.min(scale.boss_objects / 2),
        values_per_object: 512,
        seed: scale.seed,
    };
    let opts = ImportOptions { build_index: true, ..Default::default() };
    let boss = BossData::generate_and_import(&odms, &cfg, &opts).expect("import BOSS");
    println!(
        "catalog: {} objects, {} designated (RA, Dec) matches, {} flux values\n",
        boss.objects.len(),
        boss.matching.len(),
        boss.total_values
    );

    // The BOSS data scale factor: 25 million objects in the paper.
    let factor = 25e6 / boss.objects.len() as f64;
    let cost = pdc_storage::CostModel::scaled(factor, factor * scale.servers as f64 / 64.0, 1.0);
    let baseline = Hdf5Baseline::new(cost, scale.servers);
    let make_engine = |strategy| {
        QueryEngine::new(
            Arc::clone(&odms),
            EngineConfig {
                strategy,
                num_servers: scale.servers,
                cache_bytes_per_server: 1 << 30,
                cost,
                order_by_selectivity: true,
                ..Default::default()
            },
        )
    };
    let engines = [make_engine(Strategy::Histogram), make_engine(Strategy::HistogramIndex)];

    // Matching flux arrays for the baseline's traversal.
    let matching_flux: Vec<Vec<f32>> = boss
        .matching
        .iter()
        .map(|&o| match &*odms.read_region(o, 0).expect("flux") {
            pdc_types::TypedVec::Float(v) => v.clone(),
            other => panic!("unexpected type {other:?}"),
        })
        .collect();

    let mut table = Table::new(&[
        "flux condition",
        "target sel",
        "achieved sel",
        "nhits",
        "HDF5 traversal",
        "PDC-H",
        "PDC-HI",
    ]);
    // Warm-up pass (paper reports best-of-5).
    for spec in boss_flux_catalog() {
        let bound = BossData::flux_bound_for_selectivity(spec.selectivity);
        let iv = Interval::open(0.0, bound);
        for eng in &engines {
            eng.metadata_data_query(&BossData::target_conds(), &iv).expect("warm-up");
        }
    }
    for spec in boss_flux_catalog() {
        let bound = BossData::flux_bound_for_selectivity(spec.selectivity);
        let iv = Interval::open(0.0, bound);
        let h5 = baseline.boss_traversal(boss.objects.len() as u64, &matching_flux, &iv);
        let h = engines[0].metadata_data_query(&BossData::target_conds(), &iv).expect("PDC-H");
        let hi = engines[1].metadata_data_query(&BossData::target_conds(), &iv).expect("PDC-HI");
        assert_eq!(h.nhits, h5.nhits, "baseline disagrees");
        assert_eq!(h.nhits, hi.nhits, "strategies disagree");
        assert_eq!(h.objects_matched, boss.matching.len() as u64);
        let achieved = h.nhits as f64
            / (boss.matching.len() as f64 * cfg.values_per_object as f64);
        table.row(vec![
            format!("0 < flux < {bound:.2}"),
            fmt_sel(spec.selectivity),
            fmt_sel(achieved),
            h.nhits.to_string(),
            fmt_dur(h5.total()),
            fmt_dur(h.elapsed),
            fmt_dur(hi.elapsed),
        ]);
    }
    table.print();
    println!(
        "\nshape: PDC metadata resolution is instant (inverted index); HDF5 must open all {} \
         files — the paper's multi-fold speedup. PDC times vary little with selectivity because \
         each object is one region, read wholly.",
        boss.objects.len()
    );
}
