//! Fig. 6: scaling the number of PDC servers (32–512) for one
//! multi-object query with ~0.011 % selectivity, under the three
//! optimized strategies.
//!
//! More servers ⇒ fewer regions per server ⇒ faster evaluation, with the
//! broadcast and result-return terms growing slowly — "the query
//! evaluation performance with all three optimizations improves with more
//! servers".

use pdc_bench::*;
use pdc_query::{PdcQuery, Strategy};
use pdc_types::QueryOp;

fn main() {
    let scale = Scale::from_env();
    // Region size chosen so even 512 servers all hold regions.
    let region_bytes = (scale.particles as u64 * 4 / 1024).max(4 << 10);
    println!(
        "# Fig. 6 — server scaling, {} particles, region {} ({} regions)\n",
        scale.particles,
        fmt_bytes(region_bytes),
        scale.particles as u64 * 4 / region_bytes
    );
    let data = generate_vpic(&scale);
    let world = import_vpic(&data, region_bytes, true);

    // A multi-object query tuned near the paper's 0.011 % selectivity.
    let query = PdcQuery::create(world.objects.energy, QueryOp::Gt, 1.7f32)
        .and(PdcQuery::range_open(world.objects.x, 100.0f32, 180.0f32))
        .and(PdcQuery::range_open(world.objects.y, -95.0f32, 0.0f32))
        .and(PdcQuery::range_open(world.objects.z, 0.0f32, 66.0f32));

    let strategies =
        [Strategy::Histogram, Strategy::HistogramIndex, Strategy::SortedHistogram];
    let mut table = Table::new(&["servers", "PDC-H", "PDC-HI", "PDC-SH", "nhits"]);
    let mut last: Option<Vec<f64>> = None;
    let mut improved = 0u32;
    let cost = scale.cost(); // physics fixed; only the server count sweeps
    for servers in [32u32, 64, 128, 256, 512] {
        let mut cells = vec![servers.to_string()];
        let mut times = Vec::new();
        let mut nhits = 0;
        for &s in &strategies {
            let eng = engine_with_cost(&world, s, servers, cost);
            // Warm-up, then report (the paper's best-of-5).
            eng.run(&query).expect("warm-up");
            let out = eng.run(&query).expect("query");
            nhits = out.nhits;
            times.push(out.elapsed.as_secs_f64());
            cells.push(fmt_dur(out.elapsed));
        }
        cells.push(nhits.to_string());
        table.row(cells);
        if let Some(prev) = &last {
            if times.iter().zip(prev).filter(|(t, p)| *t < *p).count() >= 2 {
                improved += 1;
            }
        }
        last = Some(times);
    }
    table.print();
    println!(
        "\nshape: evaluation improves with more servers on {improved}/4 doublings \
         (paper: all three optimizations improve with more servers)"
    );
}
