//! Records the repo's scan-kernel wall-clock baseline: the monomorphized
//! mask kernels (sequential and chunk-parallel) against the per-element
//! `get_f64` scalar reference, per payload type, plus the candidate-
//! confirmation filter and the WAH mask-block builder.
//!
//! Writes `BENCH_kernels.json` (path overridable as argv[1]); element
//! count via `PDC_KERNEL_BENCH_N` (default 4M, the recorded baseline).

use pdc_bitmap::WahBitVector;
use pdc_types::{kernels, Interval, Run, Selection, TypedVec};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

const DEFAULT_N: usize = 4 << 20; // 4 Mi elements
const REPS: usize = 5;

/// Best-of-`REPS` wall time of `f`, with its (checksummed) output kept
/// alive through `black_box`.
fn best_ns<O, F: FnMut() -> O>(mut f: F) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..REPS {
        let t = Instant::now();
        black_box(f());
        best = best.min(t.elapsed().as_nanos());
    }
    best
}

struct Row {
    name: &'static str,
    scalar_ns: u128,
    kernel_ns: u128,
    parallel_ns: Option<u128>,
}

impl Row {
    fn json(&self, n: usize) -> String {
        let speed = |ns: u128| self.scalar_ns as f64 / ns as f64;
        let melems = |ns: u128| n as f64 / ns as f64 * 1e3;
        let mut s = format!(
            "    \"{}\": {{\n      \"scalar_ns\": {},\n      \"kernel_ns\": {},\n      \
             \"kernel_speedup\": {:.2},\n      \"kernel_melems_per_s\": {:.1}",
            self.name,
            self.scalar_ns,
            self.kernel_ns,
            speed(self.kernel_ns),
            melems(self.kernel_ns),
        );
        if let Some(p) = self.parallel_ns {
            let _ = write!(
                s,
                ",\n      \"parallel_ns\": {},\n      \"parallel_speedup\": {:.2}",
                p,
                speed(p)
            );
        }
        s.push_str("\n    }");
        s
    }
}

fn scan_row(name: &'static str, tv: &TypedVec, iv: &Interval, parallel: bool) -> Row {
    let expect = kernels::scan_interval_scalar(tv, iv, 0);
    assert_eq!(kernels::scan_interval(tv, iv, 0), expect, "{name}: kernel disagrees");
    let parallel_ns = if parallel {
        assert_eq!(kernels::scan_interval_threaded(tv, iv, 0, 0), expect);
        Some(best_ns(|| kernels::scan_interval_threaded(tv, iv, 0, 0)))
    } else {
        None
    };
    Row {
        name,
        scalar_ns: best_ns(|| kernels::scan_interval_scalar(tv, iv, 0)),
        kernel_ns: best_ns(|| kernels::scan_interval(tv, iv, 0)),
        parallel_ns,
    }
}

fn main() {
    let out_path =
        std::env::args().nth(1).unwrap_or_else(|| "BENCH_kernels.json".to_string());
    let n: usize = std::env::var("PDC_KERNEL_BENCH_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_N);

    // Energy-like doubles: a smooth bulk in [0, 1.8] plus a clustered
    // tail, so the open(2.1, 2.2) query is selective (realistic masks).
    let doubles: Vec<f64> = (0..n)
        .map(|i| {
            let base = ((i as f64 * 0.37).sin() + 1.0) * 0.9;
            if (3000..3400).contains(&(i % 8000)) {
                2.0 + ((i * 31) % 160) as f64 / 100.0
            } else {
                base
            }
        })
        .collect();
    let iv = Interval::open(2.1, 2.2);
    let int_iv = Interval::closed(100.0, 119.0);
    let tv_f32 = TypedVec::Float(doubles.iter().map(|&v| v as f32).collect());
    let tv_i32 = TypedVec::Int32((0..n).map(|i| (i as i32).wrapping_mul(31) % 1000).collect());
    let tv_u32 =
        TypedVec::UInt32((0..n).map(|i| (i as u32).wrapping_mul(2654435761) % 1000).collect());
    let tv_i64 =
        TypedVec::Int64((0..n).map(|i| (i as i64).wrapping_mul(2654435761) % 1000).collect());
    let tv_u64 =
        TypedVec::UInt64((0..n).map(|i| (i as u64).wrapping_mul(2654435761) % 1000).collect());
    let tv_f64 = TypedVec::Double(doubles);

    let rows = [
        scan_row("double", &tv_f64, &iv, true),
        scan_row("float", &tv_f32, &iv, true),
        scan_row("int32", &tv_i32, &int_iv, false),
        scan_row("uint32", &tv_u32, &int_iv, false),
        scan_row("int64", &tv_i64, &int_iv, false),
        scan_row("uint64", &tv_u64, &int_iv, false),
    ];

    // Candidate confirmation (PDC-HI edge bins): 13-wide candidate runs
    // every 100 coordinates.
    let candidates = Selection::from_runs(
        (0..n as u64 - 13).step_by(100).map(|s| Run::new(s, 13)).collect(),
    );
    let cand_expect = candidates.filter_coords(|i| iv.contains(tv_f64.get_f64(i as usize)));
    assert_eq!(kernels::filter_selection(&tv_f64, &iv, &candidates), cand_expect);
    let cand_scalar =
        best_ns(|| candidates.filter_coords(|i| iv.contains(tv_f64.get_f64(i as usize))));
    let cand_kernel = best_ns(|| kernels::filter_selection(&tv_f64, &iv, &candidates));

    // WAH ingestion: per-bit append vs 64-bit mask blocks (sparse bits,
    // the shape bitmap binning produces).
    let bools: Vec<bool> = (0..n).map(|i| i % 97 == 0).collect();
    let blocks: Vec<u64> = bools
        .chunks(64)
        .map(|ch| ch.iter().enumerate().fold(0u64, |m, (j, &b)| m | ((b as u64) << j)))
        .collect();
    assert_eq!(WahBitVector::from_mask_blocks(n as u64, &blocks), WahBitVector::from_bools(&bools));
    let wah_scalar = best_ns(|| WahBitVector::from_bools(&bools));
    let wah_kernel = best_ns(|| WahBitVector::from_mask_blocks(n as u64, &blocks));

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"scan_kernels\",");
    let _ = writeln!(json, "  \"elements\": {n},");
    let _ = writeln!(json, "  \"reps\": {REPS},");
    let _ = writeln!(json, "  \"timing\": \"best-of-reps wall clock, ns\",");
    json.push_str("  \"scan\": {\n");
    let body: Vec<String> = rows.iter().map(|r| r.json(n)).collect();
    json.push_str(&body.join(",\n"));
    json.push_str("\n  },\n");
    let _ = writeln!(
        json,
        "  \"candidate_filter\": {{\n    \"scalar_ns\": {cand_scalar},\n    \
         \"kernel_ns\": {cand_kernel},\n    \"kernel_speedup\": {:.2}\n  }},",
        cand_scalar as f64 / cand_kernel as f64
    );
    let _ = writeln!(
        json,
        "  \"wah_mask_ingest\": {{\n    \"per_bit_ns\": {wah_scalar},\n    \
         \"mask_block_ns\": {wah_kernel},\n    \"speedup\": {:.2}\n  }}",
        wah_scalar as f64 / wah_kernel as f64
    );
    json.push_str("}\n");

    print!("{json}");
    std::fs::write(&out_path, &json).expect("write json");
    eprintln!("wrote {out_path}");

    let double = &rows[0];
    let speedup = double.scalar_ns as f64 / double.kernel_ns as f64;
    assert!(
        n < DEFAULT_N || speedup >= 3.0,
        "double scan kernel speedup {speedup:.2} < 3x at {n} elements"
    );
}
