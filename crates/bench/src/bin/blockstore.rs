//! E15: the out-of-core block-compressed region store.
//!
//! Three measurements, each with a hard gate:
//!
//! 1. **Compression** — a VPIC-flavoured `double` array (f32-valued, as
//!    simulation dumps usually are) must compress at least 2x end-to-end
//!    in the block file, checksums and index included.
//! 2. **Cold-scan throughput** — interval scans that stream spilled
//!    blocks (decompress + fused kernel, block by block) vs the same
//!    scan over the resident payload; selections must be identical.
//! 3. **Budgeted execution** — a store importing under a memory budget
//!    far below the dataset keeps its settled resident high-water under
//!    that budget, and every strategy's selection is bit-identical to an
//!    unbounded world's.
//!
//! Writes `BENCH_blockstore.json` (path overridable as argv[1]).
//! Element count via `PDC_BLOCKSTORE_N` (default 4M). Exits non-zero if
//! a gate fails, unless `PDC_BLOCKSTORE_NO_ASSERT=1`.

use pdc_blockstore::{write_typed, BlockReader, DEFAULT_BLOCK_ELEMS};
use pdc_odms::{ImportOptions, Odms};
use pdc_query::{EngineConfig, PdcQuery, QueryEngine, Strategy};
use pdc_types::{kernels, Interval, ObjectId, Run, Selection, TypedVec};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

const DEFAULT_N: usize = 1 << 22;
const SERVERS: u32 = 8;
const REGION_BYTES: u64 = 128 << 10;

const STRATEGIES: [Strategy; 5] = [
    Strategy::FullScan,
    Strategy::Histogram,
    Strategy::HistogramIndex,
    Strategy::SortedHistogram,
    Strategy::Adaptive,
];

fn gen(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let base = ((i as f32 * 0.37).sin() + 1.0) * 0.9;
            if (3000..3400).contains(&(i % 8000)) {
                2.0 + ((i * 31) % 160) as f32 / 100.0
            } else {
                base
            }
        })
        .collect()
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pdc_bench_blockstore_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// 1. End-to-end file compression: uncompressed payload bytes over
///    on-disk file bytes (header, frames, checksums, and index included).
fn compression(values: &[f32]) -> (f64, f64) {
    let dir = tmp_dir("comp");
    let as_f64 = TypedVec::Double(values.iter().map(|&v| v as f64).collect());
    let as_f32 = TypedVec::Float(values.to_vec());
    let ratio = |tv: &TypedVec, name: &str| -> f64 {
        let path = dir.join(name);
        write_typed(&path, tv, DEFAULT_BLOCK_ELEMS).unwrap();
        let disk = std::fs::metadata(&path).unwrap().len();
        tv.size_bytes() as f64 / disk as f64
    };
    let f64_ratio = ratio(&as_f64, "vpic_f64.pbf");
    let f32_ratio = ratio(&as_f32, "vpic_f32.pbf");
    let _ = std::fs::remove_dir_all(&dir);
    (f64_ratio, f32_ratio)
}

/// 2. Wall-clock scan throughput, resident vs streamed-from-disk, with
///    a bit-identity check between the two selections.
fn scan_throughput(values: &[f32]) -> (f64, f64) {
    let dir = tmp_dir("scan");
    let tv = TypedVec::Float(values.to_vec());
    let path = dir.join("scan.pbf");
    write_typed(&path, &tv, DEFAULT_BLOCK_ELEMS).unwrap();
    let interval = Interval::open(2.1, 2.2);
    let n = values.len() as f64;

    let mut resident_best = f64::MAX;
    let mut resident_sel = Selection::default();
    for _ in 0..3 {
        let t = Instant::now();
        resident_sel = kernels::scan_interval_scalar(&tv, &interval, 0);
        resident_best = resident_best.min(t.elapsed().as_secs_f64());
    }

    let mut cold_best = f64::MAX;
    let mut cold_sel = Selection::default();
    for _ in 0..3 {
        let t = Instant::now();
        // The engine's cold path: decode one block at a time, scan it in
        // place, never materialize the region.
        let r = BlockReader::open(&path).unwrap();
        let mut runs: Vec<Run> = Vec::new();
        for b in 0..r.n_blocks() {
            let (start, elems) = r.block_span(b);
            let block = r.read_typed_block(b).unwrap();
            kernels::scan_range(&block, &interval, 0, elems as usize, start, &mut runs);
        }
        cold_sel = Selection::from_runs(runs);
        cold_best = cold_best.min(t.elapsed().as_secs_f64());
    }
    assert_eq!(resident_sel, cold_sel, "cold streaming scan must match the resident scan");
    let _ = std::fs::remove_dir_all(&dir);
    (n / resident_best / 1e6, n / cold_best / 1e6)
}

struct World {
    odms: Arc<Odms>,
    energy: ObjectId,
    x: ObjectId,
}

/// Import energy + x; when a budget is given, spill is configured
/// *before* the import so ingest itself demotes as regions seal.
fn world(values: &[f32], budget: Option<(u64, &PathBuf)>) -> World {
    let odms = Arc::new(Odms::new(64));
    if let Some((bytes, dir)) = budget {
        odms.store().configure_spill(dir, bytes, 8 << 20).unwrap();
    }
    let c = odms.create_container("bench");
    let opts = ImportOptions {
        region_bytes: REGION_BYTES,
        build_index: true,
        build_sorted: true,
        ..Default::default()
    };
    let energy =
        odms.import_array(c, "energy", TypedVec::Float(values.to_vec()), &opts).unwrap().object;
    let x: Vec<f32> = (0..values.len()).map(|i| ((i as f32 * 0.011).cos() + 1.0) * 166.0).collect();
    let x = odms.import_array(c, "x", TypedVec::Float(x), &opts).unwrap().object;
    World { odms, energy, x }
}

fn engine(w: &World, strategy: Strategy) -> QueryEngine {
    QueryEngine::new(
        Arc::clone(&w.odms),
        EngineConfig { strategy, num_servers: SERVERS, ..Default::default() },
    )
}

fn queries(w: &World) -> Vec<PdcQuery> {
    vec![
        PdcQuery::range_open(w.energy, 2.1f32, 2.2f32),
        PdcQuery::create(w.energy, pdc_types::QueryOp::Gt, 3.0f32),
        PdcQuery::range_open(w.energy, 2.0f32, 2.5f32)
            .and(PdcQuery::range_open(w.x, 100.0f32, 200.0f32)),
    ]
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_blockstore.json".to_string());
    let n: usize = std::env::var("PDC_BLOCKSTORE_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_N);
    let values = gen(n);
    println!("# E15 — out-of-core block-compressed region store ({n} elements)\n");

    let (f64_ratio, f32_ratio) = compression(&values);
    let comp_pass = f64_ratio >= 2.0;
    println!(
        "compression: vpic f64 {f64_ratio:.2}x (gate >= 2.0: {}), f32 {f32_ratio:.2}x",
        if comp_pass { "PASS" } else { "FAIL" }
    );

    let (resident_meps, cold_meps) = scan_throughput(&values);
    println!(
        "scan: resident {resident_meps:.0} Melem/s, cold stream {cold_meps:.0} Melem/s \
         ({:.2}x of resident)",
        cold_meps / resident_meps
    );

    // Budget: a quarter of the raw data bytes — far below the dataset,
    // far above any single region.
    let data_bytes = 2 * (n as u64) * 4;
    let budget = (data_bytes / 4).max(2 * REGION_BYTES);
    let dir = tmp_dir("spill");
    let unbounded = world(&values, None);
    let bounded = world(&values, Some((budget, &dir)));

    let mut strat_json = String::new();
    let mut all_match = true;
    for (i, strategy) in STRATEGIES.into_iter().enumerate() {
        let a = engine(&unbounded, strategy);
        let b = engine(&bounded, strategy);
        let mut hits = 0u64;
        let mut sim_ms = 0.0f64;
        let mut matches = true;
        for (qa, qb) in queries(&unbounded).iter().zip(&queries(&bounded)) {
            let oa = a.run(qa).unwrap();
            let ob = b.run(qb).unwrap();
            matches &= oa.selection == ob.selection && oa.elapsed == ob.elapsed;
            hits += ob.nhits;
            sim_ms += ob.elapsed.as_secs_f64() * 1e3;
        }
        all_match &= matches;
        println!(
            "{:>7}: {hits} hits over {} queries, simulated {sim_ms:.3} ms, \
             identical to unbounded: {matches}",
            strategy.label(),
            queries(&bounded).len(),
        );
        let _ = write!(
            strat_json,
            "    \"{}\": {{ \"hits\": {hits}, \"sim_ms\": {sim_ms:.3}, \
             \"identical_to_unbounded\": {matches} }}{}",
            strategy.label(),
            if i + 1 < STRATEGIES.len() { ",\n" } else { "\n" },
        );
    }

    let stats = bounded.odms.store().spill_stats().expect("spill configured");
    let budget_pass = stats.resident_high_water <= budget && stats.demotions > 0;
    let spill_ratio = if stats.spilled_comp_bytes > 0 {
        stats.spilled_raw_bytes as f64 / stats.spilled_comp_bytes as f64
    } else {
        1.0
    };
    println!(
        "budget: resident high-water {} B of {} B ({}), {} demotion(s), {} fault-in(s), \
         {} region(s) spilled at {spill_ratio:.2}x, block cache {:.1}% hits",
        stats.resident_high_water,
        budget,
        if budget_pass { "PASS" } else { "FAIL" },
        stats.demotions,
        stats.fault_ins,
        stats.spilled_regions,
        stats.block_cache.hit_rate() * 100.0,
    );
    let _ = std::fs::remove_dir_all(&dir);

    let gates = comp_pass && budget_pass && all_match;
    let json = format!(
        "{{\n  \"n_elements\": {n},\n  \"servers\": {SERVERS},\n  \
         \"region_bytes\": {REGION_BYTES},\n  \
         \"compression_f64_vpic\": {f64_ratio:.3},\n  \
         \"compression_f32_vpic\": {f32_ratio:.3},\n  \
         \"compression_gate_2x\": \"{}\",\n  \
         \"scan_resident_melems_per_s\": {resident_meps:.1},\n  \
         \"scan_cold_stream_melems_per_s\": {cold_meps:.1},\n  \
         \"memory_budget_bytes\": {budget},\n  \
         \"resident_high_water_bytes\": {},\n  \
         \"budget_gate\": \"{}\",\n  \
         \"demotions\": {},\n  \"fault_ins\": {},\n  \"spilled_regions\": {},\n  \
         \"spill_compression\": {spill_ratio:.3},\n  \
         \"block_cache_hit_rate\": {:.4},\n  \
         \"identical_to_unbounded\": {all_match},\n  \"strategies\": {{\n{strat_json}  }}\n}}\n",
        if comp_pass { "PASS" } else { "FAIL" },
        stats.resident_high_water,
        if budget_pass { "PASS" } else { "FAIL" },
        stats.demotions,
        stats.fault_ins,
        stats.spilled_regions,
        stats.block_cache.hit_rate(),
    );
    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("wrote {out_path}");

    if std::env::var("PDC_BLOCKSTORE_NO_ASSERT").is_err() && !gates {
        eprintln!("FAIL: an E15 gate did not hold");
        std::process::exit(1);
    }
}
