//! E6: storage overheads of the acceleration structures, vs. the paper's
//! reported numbers — "The Fastbit index file takes 500-600 GB (15 % to
//! 17 % of the total data size) of storage space with different region
//! sizes, and the sorted copy requires a full copy of the data."

use pdc_bench::*;

fn main() {
    let scale = Scale::from_env();
    println!("# E6 — acceleration-structure storage overheads\n");
    println!("{} particles per variable, 7 variables\n", scale.particles);
    let data = generate_vpic(&scale);

    println!("## Index + sorted sizes across region sizes (all 7 variables indexed)\n");
    let mut t = Table::new(&[
        "region size",
        "paper",
        "data",
        "index",
        "index %",
        "sorted (energy)",
        "sorted %",
        "histogram metadata",
    ]);
    for (region_bytes, paper_label) in REGION_SWEEP {
        let world = import_vpic(&data, region_bytes, true);
        let hist_bytes: u64 = {
            let meta = world.odms.meta();
            [
                world.objects.energy,
                world.objects.x,
                world.objects.y,
                world.objects.z,
                world.objects.ux,
                world.objects.uy,
                world.objects.uz,
            ]
            .iter()
            .map(|&o| meta.histogram_metadata_bytes(o))
            .sum()
        };
        let energy_bytes = scale.particles as u64 * 4;
        t.row(vec![
            fmt_bytes(region_bytes),
            paper_label.to_string(),
            fmt_bytes(world.data_bytes),
            fmt_bytes(world.index_bytes),
            format!("{:.1}%", 100.0 * world.index_bytes as f64 / world.data_bytes as f64),
            fmt_bytes(world.sorted_bytes),
            format!("{:.1}%", 100.0 * world.sorted_bytes as f64 / energy_bytes as f64),
            fmt_bytes(hist_bytes),
        ]);
    }
    t.print();
    println!(
        "\npaper: index = 15-17% of total data size; sorted copy = a full copy of the object \
         (ours also stores the original-coordinate permutation, hence >100% of the energy \
         object)."
    );

    println!("\n## Per-variable index compressibility (at the best region size)\n");
    let world = import_vpic(&data, BEST_REGION.0, true);
    let mut t = Table::new(&["variable", "index bytes", "% of variable data"]);
    let meta = world.odms.meta();
    for (name, obj) in [
        ("Energy", world.objects.energy),
        ("x", world.objects.x),
        ("y", world.objects.y),
        ("z", world.objects.z),
        ("Ux", world.objects.ux),
        ("Uy", world.objects.uy),
        ("Uz", world.objects.uz),
    ] {
        let sizes = meta.index_sizes(obj).expect("index sizes");
        let total: u64 = sizes.iter().sum();
        let var_bytes = scale.particles as u64 * 4;
        t.row(vec![
            name.to_string(),
            fmt_bytes(total),
            format!("{:.1}%", 100.0 * total as f64 / var_bytes as f64),
        ]);
    }
    t.print();
    println!(
        "\nsmooth, cell-ordered variables (positions) compress far better than thermal \
         (momentum) variables — the mix determines the aggregate index fraction."
    );
}
