//! Developer utility: print the cost breakdown of one query under each
//! strategy (not part of the figure set; handy when calibrating).

use pdc_bench::*;
use pdc_query::{PdcQuery, Strategy};

fn main() {
    let scale = Scale::from_env();
    let data = generate_vpic(&scale);
    let world = import_vpic(&data, 16 << 10, false);
    for strategy in [Strategy::FullScan, Strategy::Histogram, Strategy::HistogramIndex, Strategy::SortedHistogram] {
        let eng = engine(&world, strategy, &scale);
        let q = PdcQuery::range_open(world.objects.energy, 2.1f32, 2.2f32);
        for pass in 0..2 {
            let out = eng.run(&q).expect("query");
            let slowest = out.per_server.iter().max().unwrap();
            println!(
                "{strategy} pass{pass}: elapsed={} slowest_server={} nhits={} runs={} pfs={}B/{}req cache_hits={} scanned={} bins={} io={} cpu={} net={}",
                out.elapsed,
                slowest,
                out.nhits,
                out.selection.num_runs(),
                out.io.pfs_bytes_read,
                out.io.pfs_read_requests,
                out.io.cache_hits,
                out.work.elements_scanned,
                out.work.histogram_bins,
                out.breakdown.io,
                out.breakdown.cpu,
                out.breakdown.net,
            );
        }
    }
}
