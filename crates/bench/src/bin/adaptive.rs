//! Adaptive-strategy cost comparison: a mixed query series (narrow
//! tail windows that favor the index or the sorted replica, plus wide
//! bulk windows where pruned scans are competitive) on the scaled VPIC
//! world, evaluated under every fixed strategy and under `PDC-A`,
//! summing the *simulated* elapsed time per query. Methodology follows
//! `fig3`: one engine per strategy, one warm-up pass over the series,
//! then the reported pass (the paper reports the best of >=5 warm
//! runs) — so every strategy evaluates from warmed caches and the
//! comparison is between access paths, not first-touch luck. The
//! adaptive planner's choices are pure functions of metadata,
//! histograms and the cost model (cold-cost estimates, stable under
//! retry/reassignment and computable client-side); no single fixed
//! strategy wins both halves of the mix, so the adaptive total must
//! come out no worse than the best fixed one.
//!
//! Writes `BENCH_adaptive.json` (path overridable as argv[1]).
//! Particle count via `PDC_ADAPTIVE_N` (default 2M, the recorded
//! baseline). Exits non-zero if any strategy disagrees on hits or if
//! the adaptive total exceeds the best fixed total (set
//! `PDC_ADAPTIVE_NO_ASSERT=1` to record without gating).

use pdc_bench::{engine, import_vpic, Scale, BEST_REGION};
use pdc_query::{PdcQuery, Strategy};
use pdc_storage::SimDuration;
use pdc_types::ObjectId;
use pdc_workloads::{VpicConfig, VpicData};
use std::fmt::Write as _;

const DEFAULT_N: usize = 2 << 20;
const SERVERS: u32 = 8;

const STRATEGIES: [Strategy; 5] = [
    Strategy::FullScan,
    Strategy::Histogram,
    Strategy::HistogramIndex,
    Strategy::SortedHistogram,
    Strategy::Adaptive,
];

/// The mixed series: 6 narrow windows over the energy tail (high
/// selectivity — sorted-replica territory) + 4 wide windows over the
/// spatially-clustered `x` position (a third of the domain each —
/// histogram pruning plus plain scans on the surviving regions). A
/// fixed strategy pays its access path on every query; the adaptive
/// planner switches per predicate.
fn series(energy: ObjectId, x: ObjectId) -> Vec<PdcQuery> {
    let mut qs = Vec::new();
    for i in 0..6u32 {
        let lo = 2.05 + i as f32 * 0.25;
        qs.push(PdcQuery::range_open(energy, lo, lo + 0.05));
    }
    let x_max = pdc_workloads::vpic::X_MAX as f32;
    for i in 0..4u32 {
        let lo = (0.05 + i as f32 * 0.15) * x_max;
        qs.push(PdcQuery::range_open(x, lo, lo + x_max / 3.0));
    }
    qs
}

struct Row {
    strategy: Strategy,
    total: SimDuration,
    per_query: Vec<SimDuration>,
    hits: Vec<u64>,
}

fn measure(
    world: &pdc_bench::VpicWorld,
    scale: &Scale,
    strategy: Strategy,
    qs: &[PdcQuery],
) -> Row {
    let eng = engine(world, strategy, scale);
    // Warm-up pass, as in fig3: the paper reports warm-cache runs.
    for q in qs {
        eng.run(q).unwrap();
    }
    let mut per_query = Vec::with_capacity(qs.len());
    let mut hits = Vec::with_capacity(qs.len());
    let mut total = SimDuration::ZERO;
    for q in qs {
        let out = eng.run(q).unwrap();
        total += out.elapsed;
        per_query.push(out.elapsed);
        hits.push(out.nhits);
    }
    Row { strategy, total, per_query, hits }
}

fn main() {
    let out_path =
        std::env::args().nth(1).unwrap_or_else(|| "BENCH_adaptive.json".to_string());
    let n: usize = std::env::var("PDC_ADAPTIVE_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_N);
    let scale = Scale { particles: n, servers: SERVERS, ..Scale::from_env() };

    let data = VpicData::generate(&VpicConfig { particles: n, seed: scale.seed });
    let world = import_vpic(&data, BEST_REGION.0, true);
    let qs = series(world.objects.energy, world.objects.x);
    let rows: Vec<Row> = STRATEGIES.iter().map(|&s| measure(&world, &scale, s, &qs)).collect();

    let mut json = format!(
        "{{\n  \"particles\": {n},\n  \"servers\": {SERVERS},\n  \
         \"region_bytes\": {},\n  \
         \"series\": \"6 narrow Energy tail + 4 wide x windows\",\n  \"strategies\": {{\n",
        BEST_REGION.0,
    );
    for (i, row) in rows.iter().enumerate() {
        let per: Vec<String> =
            row.per_query.iter().map(|d| format!("{:.3}", d.as_secs_f64() * 1e3)).collect();
        let _ = write!(
            json,
            "    \"{}\": {{\n      \"total_ms\": {:.3},\n      \"per_query_ms\": [{}]\n    }}{}",
            row.strategy.label(),
            row.total.as_secs_f64() * 1e3,
            per.join(", "),
            if i + 1 < rows.len() { ",\n" } else { "\n" },
        );
    }
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark json");

    for row in &rows {
        println!(
            "{:<7} total {:>10.3} ms  (hits per query: {:?})",
            row.strategy.label(),
            row.total.as_secs_f64() * 1e3,
            row.hits,
        );
    }
    println!("wrote {out_path}");

    let gate = std::env::var("PDC_ADAPTIVE_NO_ASSERT").is_err();
    let adaptive = rows.last().unwrap();
    let mut ok = true;
    for row in &rows[..rows.len() - 1] {
        if row.hits != adaptive.hits {
            eprintln!("FAIL: {} and PDC-A disagree on hits", row.strategy.label());
            ok = false;
        }
    }
    let best_fixed =
        rows[..rows.len() - 1].iter().map(|r| r.total).min().expect("fixed rows");
    if adaptive.total > best_fixed {
        eprintln!(
            "FAIL: adaptive total {:.3} ms exceeds best fixed total {:.3} ms",
            adaptive.total.as_secs_f64() * 1e3,
            best_fixed.as_secs_f64() * 1e3,
        );
        ok = false;
    }
    if gate && !ok {
        std::process::exit(1);
    }
}
