//! # pdc-bench
//!
//! The reproduction harness: one binary per paper figure plus Criterion
//! kernel benchmarks.
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig3` | Fig. 3(a–f): single-object query time vs. selectivity, per region size |
//! | `fig4` | Fig. 4: multi-object queries at the best region size |
//! | `fig5` | Fig. 5: metadata + data queries on the BOSS catalog |
//! | `fig6` | Fig. 6: scaling the number of PDC servers |
//! | `catalog` | §V: the 21-query catalog, target vs. achieved selectivity |
//! | `overheads` | §VI: index / sorted-copy storage overheads |
//! | `ablations` | §VII + DESIGN.md §6: design-choice ablations |
//!
//! Scale knobs (environment variables): `PDC_PARTICLES` (default
//! 4,000,000), `PDC_SERVERS` (default 16), `PDC_BOSS_OBJECTS` (default
//! 5000), `PDC_SEED`. The region-size sweep is scaled 1:256 against the
//! paper (16 KB–512 KB here ↔ 4 MB–128 MB on the 466 GB Cori objects),
//! spanning the same two-decade regions-per-object regime; see
//! EXPERIMENTS.md.

use pdc_odms::{ImportOptions, Odms};
use pdc_query::{EngineConfig, QueryEngine, Strategy};
use pdc_storage::{CostModel, SimDuration};
use pdc_workloads::vpic::VpicObjects;
use pdc_workloads::{VpicConfig, VpicData};
use std::sync::Arc;

/// Scale configuration, read from the environment.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Particles per VPIC variable.
    pub particles: usize,
    /// Logical PDC servers.
    pub servers: u32,
    /// BOSS catalog size.
    pub boss_objects: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Scale {
    /// Read `PDC_*` environment variables, with defaults sized for a
    /// laptop run.
    pub fn from_env() -> Scale {
        fn env<T: std::str::FromStr>(key: &str, default: T) -> T {
            std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
        }
        Scale {
            particles: env("PDC_PARTICLES", 4_000_000),
            servers: env("PDC_SERVERS", 16),
            boss_objects: env("PDC_BOSS_OBJECTS", 5_000),
            seed: env("PDC_SEED", 0x5EED_201C),
        }
    }

    /// Dataset scale factor vs. the paper's 125-billion-particle run.
    pub fn factor(&self) -> f64 {
        125e9 / self.particles as f64
    }

    /// The cost model rescaled to this dataset size (see
    /// [`CostModel::scaled`]): I/O shrinks by the data factor; CPU grows
    /// by the data factor corrected for the 64-server paper deployment
    /// vs. our server count, so per-server scan/read ratios match.
    pub fn cost(&self) -> CostModel {
        let f = self.factor();
        CostModel::scaled(f, f * self.servers as f64 / 64.0, REGION_SCALE)
    }
}

/// The region-size sweep: ours ↔ the paper's. The paper sweeps
/// 4 MB–128 MB on 466 GB objects (119k–3.6k regions per object); at our
/// default 16 MB objects the same two-decade regions-per-object regime is
/// 16 KB–512 KB (1024–32 regions).
pub const REGION_SWEEP: [(u64, &str); 6] = [
    (16 << 10, "4MB"),
    (32 << 10, "8MB"),
    (64 << 10, "16MB"),
    (128 << 10, "32MB"),
    (256 << 10, "64MB"),
    (512 << 10, "128MB"),
];

/// The sweep entry playing the paper's "best region size" (32 MB) role.
pub const BEST_REGION: (u64, &str) = (128 << 10, "32MB");

/// Ratio between the paper's region sizes and ours (4 MB : 16 KB).
pub const REGION_SCALE: f64 = 256.0;

/// Human-readable bytes.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2}GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2}MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1}KiB", b as f64 / 1024.0)
    } else {
        format!("{b}B")
    }
}

/// Selectivity as a percentage string like the paper's axes.
pub fn fmt_sel(s: f64) -> String {
    format!("{:.4}%", s * 100.0)
}

/// A VPIC world imported at one region size.
pub struct VpicWorld {
    /// The system.
    pub odms: Arc<Odms>,
    /// Object ids of the seven variables.
    pub objects: VpicObjects,
    /// Region size used.
    pub region_bytes: u64,
    /// Total imported data bytes.
    pub data_bytes: u64,
    /// Total serialized index bytes.
    pub index_bytes: u64,
    /// Sorted-replica bytes (energy only).
    pub sorted_bytes: u64,
}

/// Import `data` at the given region size. `index_all` builds bitmap
/// indexes for every variable (needed by multi-object `PDC-HI`);
/// otherwise only `Energy` gets one. The sorted replica is built for
/// `Energy` (the paper sorts by the primary queried object).
pub fn import_vpic(data: &VpicData, region_bytes: u64, index_all: bool) -> VpicWorld {
    let odms = Arc::new(Odms::new(64));
    let container = odms.create_container("vpic");
    let mut ids = Vec::new();
    let mut data_bytes = 0;
    let mut index_bytes = 0;
    let mut sorted_bytes = 0;
    for (i, (name, values)) in data.variables().into_iter().enumerate() {
        let opts = ImportOptions {
            region_bytes,
            build_index: index_all || i == 0,
            build_sorted: i == 0,
            ..Default::default()
        };
        let report = odms
            .import_array(container, name, pdc_types::TypedVec::Float(values.clone()), &opts)
            .expect("import");
        data_bytes += report.data_bytes;
        index_bytes += report.index_bytes;
        sorted_bytes += report.sorted_bytes;
        ids.push(report.object);
    }
    VpicWorld {
        odms,
        objects: VpicObjects {
            energy: ids[0],
            x: ids[1],
            y: ids[2],
            z: ids[3],
            ux: ids[4],
            uy: ids[5],
            uz: ids[6],
        },
        region_bytes,
        data_bytes,
        index_bytes,
        sorted_bytes,
    }
}

/// Generate the VPIC dataset once for a harness run.
pub fn generate_vpic(scale: &Scale) -> VpicData {
    VpicData::generate(&VpicConfig { particles: scale.particles, seed: scale.seed })
}

/// A fresh engine over a world.
pub fn engine_with_cost(
    world: &VpicWorld,
    strategy: Strategy,
    servers: u32,
    cost: CostModel,
) -> QueryEngine {
    QueryEngine::new(
        Arc::clone(&world.odms),
        EngineConfig {
            strategy,
            num_servers: servers,
            cache_bytes_per_server: 1 << 30,
            cost,
            ..Default::default()
        },
    )
}

/// A fresh engine over a world, using the scale-appropriate cost model.
pub fn engine(world: &VpicWorld, strategy: Strategy, scale: &Scale) -> QueryEngine {
    engine_with_cost(world, strategy, scale.servers, scale.cost())
}

/// Markdown table printer.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render as GitHub-flavoured markdown.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
                .collect();
            println!("| {} |", padded.join(" | "));
        };
        line(&self.header);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(&sep);
        for row in &self.rows {
            line(row);
        }
    }
}

/// Format a simulated duration in seconds with fixed precision (tables
/// align better than the adaptive `Display`).
pub fn fmt_dur(d: SimDuration) -> String {
    format!("{:.4}", d.as_secs_f64())
}

/// Ratio `a/b` guarding zero.
pub fn speedup(baseline: SimDuration, other: SimDuration) -> f64 {
    let b = other.as_secs_f64();
    if b <= 0.0 {
        f64::INFINITY
    } else {
        baseline.as_secs_f64() / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults() {
        let s = Scale::from_env();
        assert!(s.particles > 0);
        assert!(s.servers > 0);
    }

    #[test]
    fn sweep_labels_map_consistently() {
        for (bytes, label) in REGION_SWEEP {
            let paper_mb: u64 = label.trim_end_matches("MB").parse().unwrap();
            assert_eq!(bytes * 256, paper_mb << 20, "{label}");
        }
    }

    #[test]
    fn scale_factor_and_cost() {
        let s = Scale { particles: 4_000_000, servers: 16, boss_objects: 100, seed: 1 };
        assert!((s.factor() - 31250.0).abs() < 1.0);
        let c = s.cost();
        assert!(c.pfs.link_bandwidth < 1e6);
        assert!(c.cpu.scan_ns_per_element > 1000.0);
        // DRAM stays memory-speed at any scale.
        assert!(c.dram.bandwidth > 1e9);
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.0KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.00MiB");
        assert_eq!(fmt_sel(0.013025), "1.3025%");
        assert_eq!(fmt_dur(SimDuration::from_millis(1500)), "1.5000");
    }

    #[test]
    fn speedup_guards_zero() {
        assert!(speedup(SimDuration::from_millis(10), SimDuration::ZERO).is_infinite());
        assert_eq!(speedup(SimDuration::from_millis(10), SimDuration::from_millis(5)), 2.0);
    }

    #[test]
    fn small_world_imports_and_queries() {
        let data = VpicData::generate(&VpicConfig { particles: 100_000, seed: 3 });
        let world = import_vpic(&data, 32 << 10, false);
        assert!(world.data_bytes > 0);
        assert!(world.index_bytes > 0);
        assert!(world.sorted_bytes > 0);
        let scale = Scale { particles: 100_000, servers: 8, boss_objects: 10, seed: 3 };
        let eng = engine(&world, Strategy::Histogram, &scale);
        let q = pdc_query::PdcQuery::range_open(world.objects.energy, 2.1f32, 2.2f32);
        let out = eng.run(&q).unwrap();
        let iv = pdc_types::Interval::open(2.1, 2.2);
        let exact = data.energy.iter().filter(|&&v| iv.contains(v as f64)).count() as u64;
        assert_eq!(out.nhits, exact);
    }
}
