//! Criterion micro-benchmarks of the kernels behind each strategy:
//! histogram construction and merging, WAH bitmap operations, index
//! build/query, sorted-replica build/lookup, raw scan throughput, and an
//! end-to-end small query per strategy (real wall-clock, complementing
//! the figure harness's simulated times).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pdc_bitmap::{BinnedBitmapIndex, BinningConfig, ValueDomain, WahBitVector};
use pdc_histogram::{merge_all, Histogram, HistogramConfig};
use pdc_odms::{ImportOptions, Odms};
use pdc_query::{EngineConfig, PdcQuery, QueryEngine, Strategy};
use pdc_sorted::SortedReplica;
use pdc_types::{kernels, Interval, Selection, TypedVec};
use pdc_workloads::{VpicConfig, VpicData};
use std::sync::Arc;

const N: usize = 1 << 18; // 256k elements per kernel input

/// Elements for the scan-kernel scalar-vs-kernel comparison
/// (`PDC_KERNEL_BENCH_N` overrides; the recorded baseline uses 4M).
fn kernel_n() -> usize {
    std::env::var("PDC_KERNEL_BENCH_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(N)
}

fn energy_values() -> Vec<f64> {
    let data = VpicData::generate(&VpicConfig { particles: N, seed: 42 });
    data.energy.iter().map(|&v| v as f64).collect()
}

fn bench_histogram(c: &mut Criterion) {
    let values = energy_values();
    let cfg = HistogramConfig::default();
    let mut g = c.benchmark_group("histogram");
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("build_256k", |b| {
        b.iter(|| Histogram::build(black_box(&values), &cfg).unwrap())
    });
    let locals: Vec<Histogram> =
        values.chunks(N / 64).map(|ch| Histogram::build(ch, &cfg).unwrap()).collect();
    g.bench_function("merge_64_locals", |b| {
        b.iter(|| merge_all(black_box(&locals).iter()).unwrap())
    });
    let global = merge_all(locals.iter()).unwrap();
    let iv = Interval::open(2.1, 2.2);
    g.bench_function("estimate", |b| b.iter(|| global.estimate_hits(black_box(&iv))));
    g.finish();
}

fn bench_wah(c: &mut Criterion) {
    let values = energy_values();
    let tail: Selection = Selection::from_sorted_coords(
        values.iter().enumerate().filter(|(_, &v)| v > 2.0).map(|(i, _)| i as u64),
    );
    let bulk = Selection::from_sorted_coords(
        values.iter().enumerate().filter(|(_, &v)| v < 1.0).map(|(i, _)| i as u64),
    );
    let a = WahBitVector::from_selection(N as u64, &tail);
    let b_vec = WahBitVector::from_selection(N as u64, &bulk);
    let mut g = c.benchmark_group("wah");
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("encode_tail", |b| {
        b.iter(|| WahBitVector::from_selection(N as u64, black_box(&tail)))
    });
    g.bench_function("and", |b| b.iter(|| black_box(&a).and(black_box(&b_vec))));
    g.bench_function("or", |b| b.iter(|| black_box(&a).or(black_box(&b_vec))));
    g.bench_function("count_ones", |b| b.iter(|| black_box(&a).count_ones()));
    g.bench_function("to_selection", |b| b.iter(|| black_box(&a).to_selection()));
    g.finish();
}

fn bench_index(c: &mut Criterion) {
    let values = energy_values();
    let cfg = BinningConfig::default();
    let mut g = c.benchmark_group("bitmap_index");
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("build_256k", |b| {
        b.iter(|| {
            BinnedBitmapIndex::build_with_domain(black_box(&values), &cfg, ValueDomain::F32)
                .unwrap()
        })
    });
    let idx = BinnedBitmapIndex::build_with_domain(&values, &cfg, ValueDomain::F32).unwrap();
    let iv = Interval::open(2.1, 2.2);
    g.bench_function("range_query", |b| b.iter(|| idx.query(black_box(&iv))));
    let bytes = idx.to_bytes();
    g.bench_function("deserialize", |b| {
        b.iter(|| BinnedBitmapIndex::from_bytes(black_box(&bytes)).unwrap())
    });
    g.finish();
}

fn bench_sorted(c: &mut Criterion) {
    let values = energy_values();
    let mut g = c.benchmark_group("sorted_replica");
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("build_256k", |b| {
        b.iter(|| SortedReplica::build(black_box(&values), 4096))
    });
    let replica = SortedReplica::build(&values, 4096);
    let iv = Interval::open(2.1, 2.2);
    g.bench_function("lookup", |b| b.iter(|| replica.lookup(black_box(&iv))));
    g.bench_function("matching_span", |b| b.iter(|| replica.matching_span(black_box(&iv))));
    g.finish();
}

fn bench_scan(c: &mut Criterion) {
    let values = energy_values();
    let iv = Interval::open(2.1, 2.2);
    let mut g = c.benchmark_group("scan");
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("filter_count_256k", |b| {
        b.iter(|| values.iter().filter(|&&v| iv.contains(v)).count())
    });
    g.bench_function("selection_union", |b| {
        let odd = Selection::from_sorted_coords((0..N as u64).filter(|i| i % 3 == 0));
        let even = Selection::from_sorted_coords((0..N as u64).filter(|i| i % 2 == 0));
        b.iter(|| black_box(&odd).union(black_box(&even)))
    });
    g.finish();
}

/// The tentpole comparison: the monomorphized mask kernels (sequential
/// and chunk-parallel) against the per-element `get_f64` scalar
/// reference they replaced, per payload type.
fn bench_scan_kernels(c: &mut Criterion) {
    let n = kernel_n();
    let iv = Interval::open(2.1, 2.2);
    let doubles: Vec<f64> = (0..n)
        .map(|i| {
            let base = ((i as f64 * 0.37).sin() + 1.0) * 0.9;
            if (3000..3400).contains(&(i % 8000)) {
                2.0 + ((i * 31) % 160) as f64 / 100.0
            } else {
                base
            }
        })
        .collect();
    let floats = TypedVec::Float(doubles.iter().map(|&v| v as f32).collect());
    let int_iv = Interval::closed(100.0, 119.0);
    let i64s = TypedVec::Int64(
        (0..n).map(|i| (i as i64).wrapping_mul(2654435761) % 1000).collect(),
    );
    let doubles = TypedVec::Double(doubles);

    let mut g = c.benchmark_group("scan_kernels");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("scalar_double", |b| {
        b.iter(|| kernels::scan_interval_scalar(black_box(&doubles), black_box(&iv), 0))
    });
    g.bench_function("kernel_double", |b| {
        b.iter(|| kernels::scan_interval(black_box(&doubles), black_box(&iv), 0))
    });
    g.bench_function("parallel_double", |b| {
        b.iter(|| kernels::scan_interval_threaded(black_box(&doubles), black_box(&iv), 0, 0))
    });
    g.bench_function("scalar_float", |b| {
        b.iter(|| kernels::scan_interval_scalar(black_box(&floats), black_box(&iv), 0))
    });
    g.bench_function("kernel_float", |b| {
        b.iter(|| kernels::scan_interval(black_box(&floats), black_box(&iv), 0))
    });
    g.bench_function("scalar_i64", |b| {
        b.iter(|| kernels::scan_interval_scalar(black_box(&i64s), black_box(&int_iv), 0))
    });
    g.bench_function("kernel_i64", |b| {
        b.iter(|| kernels::scan_interval(black_box(&i64s), black_box(&int_iv), 0))
    });

    // Candidate confirmation (the PDC-HI edge-bin path): per-coordinate
    // get_f64 closure vs the range-kernel filter.
    let candidates = Selection::from_runs(
        (0..n as u64 - 13).step_by(100).map(|s| pdc_types::Run::new(s, 13)).collect(),
    );
    g.bench_function("candidates_scalar", |b| {
        b.iter(|| {
            black_box(&candidates)
                .filter_coords(|i| iv.contains(doubles.get_f64(i as usize)))
        })
    });
    g.bench_function("candidates_kernel", |b| {
        b.iter(|| kernels::filter_selection(black_box(&doubles), black_box(&iv), &candidates))
    });
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let data = VpicData::generate(&VpicConfig { particles: N, seed: 42 });
    let odms = Arc::new(Odms::new(8));
    let container = odms.create_container("bench");
    let opts = ImportOptions {
        region_bytes: 16 << 10,
        build_index: true,
        build_sorted: true,
        ..Default::default()
    };
    let obj = odms
        .import_array(container, "energy", TypedVec::Float(data.energy.clone()), &opts)
        .unwrap()
        .object;
    let mut g = c.benchmark_group("query_wallclock");
    for strategy in [
        Strategy::FullScan,
        Strategy::Histogram,
        Strategy::HistogramIndex,
        Strategy::SortedHistogram,
    ] {
        let engine = QueryEngine::new(
            Arc::clone(&odms),
            EngineConfig { strategy, num_servers: 4, ..Default::default() },
        );
        let q = PdcQuery::range_open(obj, 2.1f32, 2.2f32);
        engine.run(&q).unwrap(); // warm
        g.bench_with_input(BenchmarkId::new("range_query", strategy.label()), &q, |b, q| {
            b.iter(|| engine.run(black_box(q)).unwrap())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_histogram,
    bench_wah,
    bench_index,
    bench_sorted,
    bench_scan,
    bench_scan_kernels,
    bench_end_to_end
);
criterion_main!(benches);
