//! # pdc-suite
//!
//! Facade crate for the PDC-Query reproduction. Re-exports every workspace
//! crate under one roof so examples and downstream users can depend on a
//! single crate:
//!
//! * [`types`] — ids, typed values, intervals, selections, region geometry.
//! * [`storage`] — simulated tiered HPC storage (Lustre-like object store).
//! * [`histogram`] — mergeable global histograms (Algorithm 1).
//! * [`bitmap`] — FastBit-style binned bitmap index with WAH compression.
//! * [`sorted`] — value-sorted data reorganization.
//! * [`directory`] — hierarchical region directory + joint-bounds grids
//!   for cross-variable candidate pruning.
//! * [`odms`] — the object-centric data management substrate (PDC).
//! * [`server`] — the client/server runtime with simulated network.
//! * [`query`] — **the paper's contribution**: the parallel query service.
//! * [`workloads`] — calibrated VPIC and BOSS-like synthetic datasets.
//! * [`baseline`] — the HDF5-F full-scan comparator.

pub use pdc_baseline as baseline;
pub use pdc_bitmap as bitmap;
pub use pdc_directory as directory;
pub use pdc_histogram as histogram;
pub use pdc_odms as odms;
pub use pdc_query as query;
pub use pdc_server as server;
pub use pdc_sorted as sorted;
pub use pdc_storage as storage;
pub use pdc_types as types;
pub use pdc_workloads as workloads;
