#!/usr/bin/env bash
# Tier-1 CI gate for the PDC-Query reproduction.
#
#   ./ci.sh          build + full test suite + named fault-tolerance gate
#
# Falls back to `--offline` when the crates.io registry is unreachable
# (the workspace vendors API-compatible shims under compat/, so an
# offline build is fully supported).
set -euo pipefail
cd "$(dirname "$0")"

OFFLINE=""
if ! cargo metadata --format-version 1 >/dev/null 2>&1; then
    echo "ci: registry unreachable, using --offline"
    OFFLINE="--offline"
fi

echo "== build (release) =="
cargo build --release $OFFLINE

echo "== test suite =="
cargo test -q $OFFLINE

echo "== fault-tolerance gate =="
cargo test -q $OFFLINE -- fault

echo "== clippy gate =="
cargo clippy --release $OFFLINE --workspace --all-targets -- -D warnings

echo "== bench smoke (each benchmark body runs once) =="
PDC_KERNEL_BENCH_N=65536 cargo bench $OFFLINE -p pdc-bench -- --test

echo "ci: all gates green"
