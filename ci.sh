#!/usr/bin/env bash
# Tier-1 CI gate for the PDC-Query reproduction.
#
#   ./ci.sh          build + full test suite + named fault-tolerance gate
#
# Falls back to `--offline` when the crates.io registry is unreachable
# (the workspace vendors API-compatible shims under compat/, so an
# offline build is fully supported).
set -euo pipefail
cd "$(dirname "$0")"

OFFLINE=""
if ! cargo metadata --format-version 1 >/dev/null 2>&1; then
    echo "ci: registry unreachable, using --offline"
    OFFLINE="--offline"
fi

echo "== build (release) =="
cargo build --release $OFFLINE

echo "== test suite =="
cargo test -q $OFFLINE

echo "== fault-tolerance gate =="
cargo test -q $OFFLINE -- fault

echo "== integrity gate =="
cargo test -q $OFFLINE -- integrity
# Corruption smoke: a run with 5% of regions corrupted must exit 0 and
# return the same selection (hits + runs) as the clean run.
cargo build --release $OFFLINE -p pdc-cli
PDC=target/release/pdc
SMOKE_Q="2.1 < Energy < 2.2"
SMOKE_ARGS="--particles 100000 --servers 4 --seed 42"
clean_hits=$($PDC query "$SMOKE_Q" $SMOKE_ARGS | grep -o '[0-9]* hits ([0-9]* runs)')
corrupt_out=$($PDC query "$SMOKE_Q" $SMOKE_ARGS --corrupt-regions 0.05 --fault-seed 7)
corrupt_hits=$(echo "$corrupt_out" | grep -o '[0-9]* hits ([0-9]* runs)')
if [ "$clean_hits" != "$corrupt_hits" ]; then
    echo "ci: integrity smoke FAILED: clean '$clean_hits' vs corrupt '$corrupt_hits'" >&2
    exit 1
fi
echo "$corrupt_out" | grep -q '^integrity:' || {
    echo "ci: integrity smoke FAILED: no integrity report in corrupt run" >&2
    exit 1
}
echo "integrity smoke: '$corrupt_hits' identical under 5% corruption"

echo "== batch-throughput gate =="
# The concurrent query-series engine must beat the sequential loop by
# >= 3x wall clock on a 32-query overlapping series (the bin exits
# non-zero below that floor) while producing bit-identical results
# (asserted inside the bin). A CLI batch smoke checks the user-facing
# path end to end: batched hits must equal the single-run hits.
cargo build --release $OFFLINE -p pdc-bench
target/release/throughput /tmp/ci_throughput.json
batch_out=$($PDC query "$SMOKE_Q" $SMOKE_ARGS --queries 8)
batch_hits=$(echo "$batch_out" | grep -o '[0-9]* hits ([0-9]* runs)')
if [ "$clean_hits" != "$batch_hits" ]; then
    echo "ci: batch smoke FAILED: single '$clean_hits' vs batched '$batch_hits'" >&2
    exit 1
fi
echo "$batch_out" | grep -q '^batch: 8 queries' || {
    echo "ci: batch smoke FAILED: no throughput report in batch run" >&2
    exit 1
}
echo "batch smoke: '$batch_hits' identical across 8-query batch"

echo "== adaptive-strategy gate =="
# PDC-A must return exactly the full-scan selection (operator choices
# may differ per region; answers may not), and the cost-model gate in
# the bench bin asserts the adaptive series total is no worse than the
# best fixed strategy at the recorded baseline scale.
adaptive_hits=$($PDC query "$SMOKE_Q" $SMOKE_ARGS --strategy A | grep -o '[0-9]* hits ([0-9]* runs)')
fullscan_hits=$($PDC query "$SMOKE_Q" $SMOKE_ARGS --strategy F | grep -o '[0-9]* hits ([0-9]* runs)')
if [ "$adaptive_hits" != "$fullscan_hits" ]; then
    echo "ci: adaptive smoke FAILED: adaptive '$adaptive_hits' vs full-scan '$fullscan_hits'" >&2
    exit 1
fi
echo "adaptive smoke: '$adaptive_hits' identical to full scan"
explain_out=$($PDC query "$SMOKE_Q" $SMOKE_ARGS --strategy A --explain)
echo "$explain_out" | grep -q '^explain: strategy PDC-A' || {
    echo "ci: explain smoke FAILED: no explain header in --explain run" >&2
    exit 1
}
echo "$explain_out" | grep -q 'est(lo..hi)' || {
    echo "ci: explain smoke FAILED: no operator table in --explain run" >&2
    exit 1
}
echo "explain smoke: operator table rendered"
target/release/adaptive /tmp/ci_adaptive.json

echo "== ingest gate =="
# Streaming ingest: a query running mid-ingest must be bit-identical to
# the same query on a store imported whole at the extent it planned
# against, for every strategy, with and without faults/corruption.
cargo test -q $OFFLINE -p pdc-query --test ingest_consistency
cargo test -q $OFFLINE -p pdc-odms --test persist_negative
cargo test -q $OFFLINE -p pdc-histogram --test histogram_props
# Bench-bin correctness gate (exits non-zero on any divergence from the
# sealed baselines), then a CLI smoke that appends 10% of the particles
# across 3 batches mid-series and asserts every extent sealed-consistent.
target/release/ingest /tmp/ci_ingest.json
ingest_out=$($PDC ingest "$SMOKE_Q" $SMOKE_ARGS --append-batches 3 --append-fraction 0.1)
echo "$ingest_out" | grep -q 'ingest gate: PASS' || {
    echo "ci: ingest smoke FAILED:" >&2
    echo "$ingest_out" >&2
    exit 1
}
echo "$ingest_out" | tail -n 1

echo "== pruning gate =="
# Hierarchical region directory + joint bounds: pruning must stay
# advisory and sound (bit-identical selections and simulated costs with
# the directory on or off, all strategies, under faults + corruption),
# and the bench bin asserts the conjunctive 3-D window workload admits
# >= 2x fewer regions than 1-D min/max pruning.
cargo test -q $OFFLINE -p pdc-query --test pruning_props
target/release/pruning /tmp/ci_pruning.json
dir_out=$($PDC query "Energy > 2.0 AND 100 < x < 200" $SMOKE_ARGS --joint Energy,x --explain)
echo "$dir_out" | grep -q '^joint bounds: registered (Energy,x)' || {
    echo "ci: pruning smoke FAILED: no joint-registration report" >&2
    exit 1
}
echo "$dir_out" | grep -q 'directory: .* killed joint' || {
    echo "ci: pruning smoke FAILED: no directory stats in --explain run" >&2
    exit 1
}
nodir_hits=$($PDC query "Energy > 2.0 AND 100 < x < 200" $SMOKE_ARGS --no-directory | grep -o '[0-9]* hits ([0-9]* runs)')
dir_hits=$(echo "$dir_out" | grep -o '[0-9]* hits ([0-9]* runs)')
if [ "$dir_hits" != "$nodir_hits" ]; then
    echo "ci: pruning smoke FAILED: directory '$dir_hits' vs --no-directory '$nodir_hits'" >&2
    exit 1
fi
echo "pruning smoke: '$dir_hits' identical with and without the directory"

echo "== replication gate =="
# K-way replication: the kill-matrix tests (every strategy x k x kills
# combination bit-identical or a typed RetriesExhausted), the bench
# bin's own gate (k >= 2 kill degradation <= 1.1x the no-kill series,
# recovery lane silent under placement), and a CLI smoke of the
# replica-aware routing + elastic membership surface. The smoke query
# touches every region so the kill probe actually fires mid-evaluation.
cargo test -q $OFFLINE -- replication
target/release/replication /tmp/ci_replication.json
REPL_Q="Energy > 0"
plain_hits=$($PDC query "$REPL_Q" $SMOKE_ARGS | grep -o '[0-9]* hits ([0-9]* runs)')
repl_out=$($PDC query "$REPL_Q" $SMOKE_ARGS --replicas 2 --kill-servers 1 --fault-seed 3)
repl_hits=$(echo "$repl_out" | grep -o '[0-9]* hits ([0-9]* runs)')
if [ "$plain_hits" != "$repl_hits" ]; then
    echo "ci: replication smoke FAILED: unreplicated '$plain_hits' vs killed k=2 '$repl_hits'" >&2
    exit 1
fi
echo "$repl_out" | grep -q 'failed over to live replicas' || {
    echo "ci: replication smoke FAILED: no failover report in killed run" >&2
    exit 1
}
echo "$repl_out" | grep -q '^rebuild: redundancy restored' || {
    echo "ci: replication smoke FAILED: no background-rebuild report in killed run" >&2
    exit 1
}
member_out=$($PDC query "$REPL_Q" $SMOKE_ARGS --replicas 2 --join-server --leave-server 0)
[ "$(echo "$member_out" | grep -c 'results unchanged: yes')" = 2 ] || {
    echo "ci: replication smoke FAILED: join/leave changed results:" >&2
    echo "$member_out" >&2
    exit 1
}
$PDC query "$SMOKE_Q" $SMOKE_ARGS --replicas 2 --explain | grep -q 'slot routes (slot' || {
    echo "ci: replication smoke FAILED: no per-slot route report in --explain run" >&2
    exit 1
}
echo "replication smoke: '$repl_hits' identical under kill, join, and leave"

echo "== out-of-core gate =="
# Spill tier: block files must roundtrip bit-exact and fail typed on
# damage, and a memory-budgeted store must answer every strategy
# bit-identically to an unbounded one (incl. simulated costs) across
# faults, corruption, batches, and streaming appends.
cargo test -q $OFFLINE -p pdc-blockstore
cargo test -q $OFFLINE -p pdc-query --test spill_equivalence
# Bench-bin gate (compression >= 2x, resident high-water <= budget with
# demotions observed, all strategies identical to unbounded), then a
# CLI smoke under a budget far below the dataset.
target/release/blockstore /tmp/ci_blockstore.json
spill_out=$($PDC query "$SMOKE_Q" $SMOKE_ARGS --memory-budget 256K)
spill_hits=$(echo "$spill_out" | grep -o '[0-9]* hits ([0-9]* runs)')
if [ "$clean_hits" != "$spill_hits" ]; then
    echo "ci: out-of-core smoke FAILED: unbounded '$clean_hits' vs budgeted '$spill_hits'" >&2
    exit 1
fi
echo "$spill_out" | grep -q '^out-of-core: resident high-water' || {
    echo "ci: out-of-core smoke FAILED: no spill report in budgeted run" >&2
    exit 1
}
echo "out-of-core smoke: '$spill_hits' identical under a 256K budget"

echo "== service gate =="
# Multi-tenant service loop: the equivalence suite (every admitted
# query bit-identical to a solo run under faults, corruption,
# replication, and spill), the bench bin's own gates (dispatch-order
# replay identical, late shared-scan joins observed, flood mix degrades
# well-behaved p99 <= 1.25x the uniform mix), and a CLI smoke replaying
# the committed 3-tenant trace through `pdc serve`.
cargo test -q $OFFLINE -p pdc-query --test service_equivalence
target/release/service /tmp/ci_service.json
serve_out=$($PDC serve --trace-file examples/service_trace.txt --particles 50000 --servers 4)
echo "$serve_out" | grep -q 'service equivalence: PASS' || {
    echo "ci: service smoke FAILED: no equivalence PASS in serve run:" >&2
    echo "$serve_out" >&2
    exit 1
}
echo "$serve_out" | grep -q 'late join(s)' || {
    echo "ci: service smoke FAILED: no shared-scan-group report in serve run" >&2
    exit 1
}
echo "$serve_out" | grep -Eq 'tenant +flood: .*\([1-9][0-9]* rejected' || {
    echo "ci: service smoke FAILED: flood tenant was never rejected:" >&2
    echo "$serve_out" >&2
    exit 1
}
echo "$serve_out" | tail -n 1

echo "== clippy gate =="
cargo clippy --release $OFFLINE --workspace --all-targets -- -D warnings

echo "== bench smoke (each benchmark body runs once) =="
PDC_KERNEL_BENCH_N=65536 cargo bench $OFFLINE -p pdc-bench -- --test

echo "ci: all gates green"
