//! Offline shim for `rand` 0.8: deterministic SplitMix64 generator behind
//! the `Rng`/`SeedableRng` surface the workspace uses (`gen::<f64>()`,
//! `gen::<bool>()`, `gen_range` over float and integer ranges).
//!
//! The stream differs from upstream rand's ChaCha12 `StdRng`; in-repo
//! consumers only require seeded determinism, not a specific stream.

use std::ops::Range;

/// Values `gen()` can produce.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn draw(rng: &mut dyn RngCore) -> f32 {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn draw(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw(rng: &mut dyn RngCore) -> u32 {
        rng.next_u64() as u32
    }
}

/// Range types `gen_range` accepts.
pub trait SampleRange {
    /// The produced value type.
    type Output;
    /// Draw a value uniformly from the range.
    fn sample(self, rng: &mut dyn RngCore) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::draw(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample(self, rng: &mut dyn RngCore) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f32::draw(rng);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Core entropy source.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// The convenience surface (`gen`, `gen_range`).
pub trait Rng: RngCore + Sized {
    /// Draw a value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draw uniformly from a range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Draw a bool that is true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    /// Deterministic SplitMix64 generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(5u32..9);
            assert!((5..9).contains(&i));
        }
    }

    #[test]
    fn gen_f64_uniform_01() {
        let mut rng = StdRng::seed_from_u64(1);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
