//! Offline shim for `parking_lot`: `Mutex` and `RwLock` over the std
//! primitives with parking_lot's API shape — `lock()`/`read()`/`write()`
//! return guards directly, and a poisoned lock (a panic while held) is
//! recovered rather than propagated, matching parking_lot's no-poisoning
//! semantics. That recovery matters for the server pool's panic isolation:
//! a logical server whose handler panics must not wedge its state lock.

use std::sync::{self, PoisonError};

/// Mutual exclusion over std's `Mutex`, parking_lot-style API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (recovers from poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock over std's `RwLock`, parking_lot-style API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard (recovers from poisoning).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire the exclusive write guard (recovers from poisoning).
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(7));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }
}
