//! Empty `Serialize` / `Deserialize` derives: the workspace only uses the
//! derive attributes as markers (nothing serializes through serde), so the
//! macros expand to nothing.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
