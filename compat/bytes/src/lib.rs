//! Offline shim for `bytes`: a cheaply cloneable, immutable byte buffer.

use std::ops::Deref;
use std::sync::Arc;

/// Ref-counted immutable bytes (stand-in for `bytes::Bytes`).
#[derive(Clone, Default)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap a static byte slice (copies; the real crate borrows, but no
    /// caller depends on zero-copy here).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(bytes.into())
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(data.into())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v.into())
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(v.into())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.0.len())
    }
}

/// Growable byte buffer (stand-in for `bytes::BytesMut`).
#[derive(Clone, Default, Debug)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0.into())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Sequential little/big-endian reads over a shrinking slice
/// (stand-in for `bytes::Buf`; implemented for `&[u8]`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Consume `n` bytes.
    fn advance(&mut self, n: usize);
    /// Copy out `dst.len()` bytes and advance.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian u32.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian f64.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Read a little-endian f32.
    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Sequential little/big-endian writes (stand-in for `bytes::BufMut`;
/// implemented for [`BytesMut`] and `Vec<u8>`).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian f64.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian f32.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_eq() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(&a[..], &[1, 2, 3]);
        assert_eq!(Bytes::from_static(b"abc").as_ref(), b"abc");
    }

    #[test]
    fn buf_roundtrip() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(42);
        w.put_f64_le(1.5);
        let frozen = w.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 1 + 4 + 8 + 8);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.get_f64_le(), 1.5);
        assert_eq!(r.remaining(), 0);
    }
}
