//! Offline shim for `proptest`: a deterministic property-test runner
//! covering the API surface this workspace uses.
//!
//! Differences from the real crate:
//!
//! * **No shrinking.** A failing case panics with its case number; since
//!   generation is a pure function of (test name, case index), any case
//!   replays exactly.
//! * **Deterministic by construction.** The RNG seed derives from the test
//!   name and case index — no persistence files, no environment coupling.
//! * Strategies generate values directly (no value trees).

use std::marker::PhantomData;
use std::ops::Range;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// From an explicit seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// The canonical per-case RNG: seed = hash(test name) + case index.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::new(h.wrapping_add(case as u64).wrapping_mul(0x2545_F491_4F6C_DD1D))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform usize in [0, n) (n > 0).
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A generator of test values (value-tree-free stand-in for
/// `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase into a cheaply cloneable strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }

    /// Build recursive structures: `recurse` receives a strategy for the
    /// substructure and returns the composite; nesting is bounded by
    /// `depth`. (`_desired_size` / `_expected_branch` accepted for API
    /// compatibility.)
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let base = self.boxed();
        let mut cur = base.clone();
        for _ in 0..depth {
            let composite = recurse(cur).boxed();
            cur = Union::new(vec![base.clone(), composite]).boxed();
        }
        cur
    }
}

/// Type-erased, cloneable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among same-valued strategies (`prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// From boxed arms (at least one).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len());
        self.0[i].generate(rng)
    }
}

/// Always yields a clone of the value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Numeric ranges are strategies.
macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

// Tuples of strategies are strategies.
macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64() * 2e6 - 1e6
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        (rng.next_f64() * 2e6 - 1e6) as f32
    }
}

/// Strategy for [`Arbitrary`] types.
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

// ---------------------------------------------------------------------------
// collection / sample modules
// ---------------------------------------------------------------------------

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max_excl: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max_excl: *r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_excl: n + 1 }
        }
    }

    /// Vec-of-strategy strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max_excl - self.size.min;
            let len = self.size.min + if span > 0 { rng.below(span) } else { 0 };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Uniform pick from a fixed set.
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len())].clone()
        }
    }

    /// `prop::sample::select(options)`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select of empty set");
        Select(options)
    }
}

// ---------------------------------------------------------------------------
// Runner plumbing
// ---------------------------------------------------------------------------

/// Runner configuration (`cases` is the only knob the shim honours).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
    /// Accepted for compatibility; unused (no shrinking).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_shrink_iters: 0 }
    }
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..Default::default() }
    }
}

/// Prints the failing case number if the property body panics, so the
/// deterministic case can be replayed.
pub struct CaseGuard {
    test_name: &'static str,
    case: u32,
    armed: bool,
}

impl CaseGuard {
    /// Arm for one case.
    pub fn new(test_name: &'static str, case: u32) -> Self {
        CaseGuard { test_name, case, armed: true }
    }

    /// The case completed; do not report on drop.
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "proptest shim: {} failed at case {} (deterministic; re-runs reproduce it)",
                self.test_name, self.case
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// The `proptest!` block: an optional `#![proptest_config(..)]` followed
/// by `#[test] fn name(arg in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as Default>::default()); $($rest)* }
    };
}

/// Internal: expands each property fn into a looping `#[test]`.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($cfg:expr); $($(#[doc = $doc:expr])* #[test] fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[doc = $doc])*
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                const __NAME: &str = concat!(module_path!(), "::", stringify!($name));
                for __case in 0..config.cases {
                    let mut __rng = $crate::TestRng::for_case(__NAME, __case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __guard = $crate::CaseGuard::new(__NAME, __case);
                    { $body }
                    __guard.disarm();
                }
            }
        )*
    };
}

/// `prop_assert!` — plain assert (no shrinking to report).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `prop_assert_eq!` — plain assert_eq.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `prop_assert_ne!` — plain assert_ne.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// `prop_oneof!` — uniform choice among the arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Mirror of `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_generation() {
        let strat = prop::collection::vec(0u64..100, 1..20);
        let a: Vec<u64> = Strategy::generate(&strat, &mut TestRng::for_case("t", 3));
        let b: Vec<u64> = Strategy::generate(&strat, &mut TestRng::for_case("t", 3));
        assert_eq!(a, b);
        let c: Vec<u64> = Strategy::generate(&strat, &mut TestRng::for_case("t", 4));
        // Overwhelmingly likely to differ between cases.
        assert!(a != c || a.len() != c.len() || a.is_empty());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(9);
        for _ in 0..500 {
            let v = Strategy::generate(&(-5i64..7), &mut rng);
            assert!((-5..7).contains(&v));
            let f = Strategy::generate(&(-1.5f64..2.5), &mut rng);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]
        #[test]
        fn macro_roundtrip(xs in prop::collection::vec(0u32..50, 0..10), flag in any::<bool>()) {
            prop_assert!(xs.len() < 10);
            if flag {
                let counted = xs.iter().filter(|&&x| x < 50).count();
                prop_assert_eq!(xs.len(), counted);
            }
        }
    }

    proptest! {
        #[test]
        fn oneof_and_map(v in prop_oneof![
            (0u32..10).prop_map(|x| x as u64),
            (100u32..110).prop_map(|x| x as u64),
        ]) {
            prop_assert!(v < 10 || (100..110).contains(&v));
        }
    }
}
