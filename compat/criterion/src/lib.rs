//! Offline shim for `criterion`: the benchmark-definition surface the
//! workspace uses, backed by a simple timing loop that prints ns/iter.
//! No statistical analysis, HTML reports, or baselines — just enough to
//! compile and run `cargo bench` offline.

use std::fmt::Display;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// `cargo bench -- --test` mode: run every benchmark body exactly once
/// (a smoke check that it works) instead of the timing loop.
static TEST_MODE: AtomicBool = AtomicBool::new(false);

/// Called by `criterion_main!` before any group runs.
pub fn __init_from_args() {
    if std::env::args().any(|a| a == "--test") {
        TEST_MODE.store(true, Ordering::Relaxed);
    }
}

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub use std::hint::black_box;

/// Benchmark identifier: function name plus a parameter label.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("range_query", label)`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { name: format!("{}/{}", function_name.into(), parameter) }
    }
}

/// Throughput annotation (recorded, echoed in output).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Drives the measured closure.
pub struct Bencher {
    iters_done: u64,
    nanos: u128,
}

impl Bencher {
    /// Time `routine`, warming up briefly then measuring a fixed batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if TEST_MODE.load(Ordering::Relaxed) {
            let start = Instant::now();
            black_box(routine());
            self.nanos = start.elapsed().as_nanos();
            self.iters_done = 1;
            return;
        }
        // Warm-up: a few untimed iterations.
        for _ in 0..3 {
            black_box(routine());
        }
        // Measure enough iterations to cover ~50ms, capped for slow routines.
        let probe = Instant::now();
        black_box(routine());
        let per_iter = probe.elapsed().as_nanos().max(1);
        let target = 50_000_000u128; // 50ms budget
        let iters = (target / per_iter).clamp(1, 1000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.nanos = start.elapsed().as_nanos();
        self.iters_done = iters;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Record the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Run a benchmark with no explicit input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let id = id.into();
        let mut b = Bencher { iters_done: 0, nanos: 0 };
        f(&mut b);
        self.report(&id, &b);
    }

    /// Run a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut b = Bencher { iters_done: 0, nanos: 0 };
        f(&mut b, input);
        self.report(&id.name, &b);
    }

    /// Finish the group (no-op beyond a blank line).
    pub fn finish(self) {
        println!();
    }

    fn report(&self, id: &str, b: &Bencher) {
        let per_iter = if b.iters_done > 0 { b.nanos / b.iters_done as u128 } else { 0 };
        let tp = match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > 0 => {
                format!("  ({:.1} Melem/s)", n as f64 / per_iter as f64 * 1e3)
            }
            Some(Throughput::Bytes(n)) if per_iter > 0 => {
                format!("  ({:.1} MiB/s)", n as f64 / per_iter as f64 * 1e9 / (1 << 20) as f64)
            }
            _ => String::new(),
        };
        println!("{}/{}: {} ns/iter{}", self.name, id, per_iter, tp);
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, _criterion: self }
    }
}

/// `criterion_group!(name, target, ...)` — a function running each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// `criterion_main!(group, ...)` — the binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $crate::__init_from_args();
            $($group();)+
        }
    };
}
