//! Offline shim for `rayon`: the parallel-slice methods the workspace
//! calls, executed sequentially. Correctness is identical; only the
//! wall-clock parallelism is lost (simulated times are unaffected — they
//! come from the cost model, not the host clock).

/// Sequential stand-ins for rayon's parallel slice-sort methods.
pub trait ParallelSliceMut<T: Send> {
    /// Drop-in for `par_sort_unstable_by` (sequential).
    fn par_sort_unstable_by<F>(&mut self, compare: F)
    where
        F: Fn(&T, &T) -> std::cmp::Ordering + Sync;

    /// Drop-in for `par_sort_unstable` (sequential).
    fn par_sort_unstable(&mut self)
    where
        T: Ord;

    /// Drop-in for `par_sort_unstable_by_key` (sequential).
    fn par_sort_unstable_by_key<K: Ord, F>(&mut self, key: F)
    where
        F: Fn(&T) -> K + Sync;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_sort_unstable_by<F>(&mut self, compare: F)
    where
        F: Fn(&T, &T) -> std::cmp::Ordering + Sync,
    {
        self.sort_unstable_by(compare);
    }

    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }

    fn par_sort_unstable_by_key<K: Ord, F>(&mut self, key: F)
    where
        F: Fn(&T) -> K + Sync,
    {
        self.sort_unstable_by_key(key);
    }
}

/// Mirror of `rayon::prelude`.
pub mod prelude {
    pub use super::ParallelSliceMut;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_sort_matches_sort() {
        let mut v = vec![5, 1, 4, 2, 3];
        v.par_sort_unstable_by(|a, b| a.cmp(b));
        assert_eq!(v, vec![1, 2, 3, 4, 5]);
    }
}
