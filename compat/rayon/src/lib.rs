//! Offline shim for `rayon`: the subset of the API the workspace calls.
//!
//! The parallel-slice sort methods run sequentially (correctness is
//! identical; simulated times are unaffected — they come from the cost
//! model, not the host clock). [`join`] is genuinely parallel: it runs
//! its two closures on scoped OS threads, which is what the scan-kernel
//! layer uses for chunk-parallel region evaluation. There is no thread
//! pool — each `join` spawns one thread — so callers should recurse only
//! a few levels deep on work that is large enough to amortize the spawn.

/// Run two closures, potentially in parallel, returning both results.
///
/// Drop-in for `rayon::join`, backed by `std::thread::scope`: `b` runs on
/// a freshly spawned scoped thread while `a` runs on the caller's thread.
/// A panic in either closure propagates to the caller.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = match hb.join() {
            Ok(rb) => rb,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (ra, rb)
    })
}

/// Drop-in for `rayon::current_num_threads`: the host's available
/// parallelism (what a default rayon pool would size itself to).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Sequential stand-ins for rayon's parallel slice-sort methods.
pub trait ParallelSliceMut<T: Send> {
    /// Drop-in for `par_sort_unstable_by` (sequential).
    fn par_sort_unstable_by<F>(&mut self, compare: F)
    where
        F: Fn(&T, &T) -> std::cmp::Ordering + Sync;

    /// Drop-in for `par_sort_unstable` (sequential).
    fn par_sort_unstable(&mut self)
    where
        T: Ord;

    /// Drop-in for `par_sort_unstable_by_key` (sequential).
    fn par_sort_unstable_by_key<K: Ord, F>(&mut self, key: F)
    where
        F: Fn(&T) -> K + Sync;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_sort_unstable_by<F>(&mut self, compare: F)
    where
        F: Fn(&T, &T) -> std::cmp::Ordering + Sync,
    {
        self.sort_unstable_by(compare);
    }

    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }

    fn par_sort_unstable_by_key<K: Ord, F>(&mut self, key: F)
    where
        F: Fn(&T) -> K + Sync,
    {
        self.sort_unstable_by_key(key);
    }
}

/// Mirror of `rayon::prelude`.
pub mod prelude {
    pub use super::ParallelSliceMut;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_sort_matches_sort() {
        let mut v = vec![5, 1, 4, 2, 3];
        v.par_sort_unstable_by(|a, b| a.cmp(b));
        assert_eq!(v, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn join_returns_both_results() {
        let xs: Vec<u64> = (0..1000).collect();
        let (a, b) = super::join(
            || xs.iter().sum::<u64>(),
            || xs.iter().filter(|&&x| x % 2 == 0).count(),
        );
        assert_eq!(a, 499_500);
        assert_eq!(b, 500);
    }

    #[test]
    fn join_runs_on_distinct_threads() {
        let main_id = std::thread::current().id();
        let (_, spawned_id) = super::join(|| (), || std::thread::current().id());
        assert_ne!(main_id, spawned_id);
    }

    #[test]
    fn num_threads_positive() {
        assert!(super::current_num_threads() >= 1);
    }
}
