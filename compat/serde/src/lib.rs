//! Offline shim for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types but
//! never serializes through serde (snapshots stay in memory), so the
//! traits are inert markers and the derives expand to nothing. Swapping
//! the path dependency back to real serde requires no source changes.

pub use pdc_compat_serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
